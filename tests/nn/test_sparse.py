"""Parity and gradient tests for the block-sparse spmm engine.

Every backend (``scipy``, ``ell``, and ``numba`` when installed) must be
**bit-identical** to the plain scipy composition in float64; in float32
the kernels are order-exact by construction, and the documented guarantee
is agreement within ``rtol=1e-6`` (in practice the parity is bitwise
there too).  Fixtures cover the block shapes the batcher produces: empty
graphs, isolated nodes, degree-skewed stars and random batches.

The module-level ``float64_runtime`` fixture (see ``conftest.py``) keeps
the gradient checks in float64.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gnn import BatchAssembler, BatchCache, GraphExample, build_batch
from repro.nn import (
    BlockEll,
    SparseOp,
    Tensor,
    Workspace,
    as_sparse_op,
    csr_from_parts,
    dtype_scope,
    gather_stack,
    graph_conv,
    numba_available,
    set_spmm_backend,
    spmm_backend,
    spmm_scope,
    stack_columns,
)
from repro.nn.tensor import concat

BACKENDS = ["scipy", "ell"] + (["numba"] if numba_available() else [])


def _example(rng, n, kind="random"):
    if kind == "empty":
        edges = np.empty((0, 2), dtype=np.int64)
    elif kind == "star":  # degree-skewed: one hub touching every node
        edges = np.array([(0, i) for i in range(1, n)], dtype=np.int64)
    elif kind == "isolated":  # a few edges, most nodes isolated
        edges = np.array([(0, 1)], dtype=np.int64) if n > 1 else np.empty((0, 2), dtype=np.int64)
    else:
        m = int(rng.integers(1, 3 * n))
        edges = rng.integers(0, n, size=(m, 2)).astype(np.int64)
        edges = edges[edges[:, 0] != edges[:, 1]]
        if not len(edges):
            edges = np.array([(0, min(1, n - 1))], dtype=np.int64)
    features = rng.standard_normal((n, 4))
    return GraphExample(n, edges, features, label=int(rng.integers(0, 2)))


def parity_operators(rng):
    """Operators exercising every block shape the batcher can produce."""
    singles = [
        _example(rng, 1, "empty"),
        _example(rng, 5, "empty"),
        _example(rng, 7, "isolated"),
        _example(rng, 41, "star"),
        _example(rng, 12),
    ]
    ops = [build_batch([e]).norm_adj for e in singles]
    mixed = build_batch(singles + [_example(rng, int(rng.integers(2, 30))) for _ in range(6)])
    ops.append(mixed.norm_adj)
    return ops


@pytest.mark.parametrize("backend", BACKENDS)
def test_matmul_parity_float64_bitwise(backend):
    rng = np.random.default_rng(0)
    for matrix in parity_operators(rng):
        dense = rng.standard_normal((matrix.shape[0], 5))
        reference = matrix.tocsr() @ dense
        reference_t = matrix.tocsr().T @ dense
        op = SparseOp.from_csr(matrix)
        with spmm_scope(backend):
            assert np.array_equal(op.matmul(dense), reference)
            assert np.array_equal(op.matmul_t(dense), reference_t)
            # preallocated outputs, including strided destinations
            out = np.empty_like(reference)
            assert np.array_equal(op.matmul(dense, out=out), reference)
            wide = np.empty((matrix.shape[0], 10))
            view = wide[:, 2:7]
            op.matmul(dense, out=view)
            assert np.array_equal(view, reference)


@pytest.mark.parametrize("backend", BACKENDS)
def test_matmul_parity_float32(backend):
    """float32 guarantee: rtol 1e-6 (order-exact kernels are bitwise)."""
    rng = np.random.default_rng(1)
    with dtype_scope(np.float32):
        for matrix in parity_operators(rng):
            dense = rng.standard_normal((matrix.shape[0], 5)).astype(np.float32)
            reference = matrix.tocsr() @ dense
            reference_t = matrix.tocsr().T @ dense
            op = SparseOp.from_csr(matrix)
            with spmm_scope(backend):
                np.testing.assert_allclose(
                    op.matmul(dense), reference, rtol=1e-6, atol=1e-7
                )
                np.testing.assert_allclose(
                    op.matmul_t(dense), reference_t, rtol=1e-6, atol=1e-7
                )


def test_single_column_dense_parity():
    """The 1-channel layer's shape — where reduction reorders once bit."""
    rng = np.random.default_rng(2)
    for matrix in parity_operators(rng):
        dense = rng.standard_normal((matrix.shape[0], 1))
        op = SparseOp.from_csr(matrix)
        with spmm_scope("ell"):
            assert np.array_equal(op.matmul(dense), matrix.tocsr() @ dense)


def test_blockell_layout():
    rng = np.random.default_rng(3)
    matrix = build_batch([_example(rng, 41, "star")]).norm_adj.tocsr()
    ell = BlockEll.from_csr(matrix)
    counts = np.diff(matrix.indptr)
    assert ell.width == counts.max()
    # padded tails carry index 0 / value 0
    taps = np.arange(ell.width)[None, :]
    pad = taps >= counts[:, None]
    assert (ell.values[pad] == 0).all()
    assert (ell.indices[pad] == 0).all()
    # stored entries keep CSR order
    row = int(np.argmax(counts))
    start, stop = matrix.indptr[row], matrix.indptr[row + 1]
    assert np.array_equal(ell.indices[row, : stop - start], matrix.indices[start:stop])


def test_empty_operator():
    op = SparseOp.from_csr(sp.csr_matrix((3, 3)))
    dense = np.arange(6.0).reshape(3, 2)
    for backend in BACKENDS:
        with spmm_scope(backend):
            assert np.array_equal(op.matmul(dense), np.zeros((3, 2)))
            assert np.array_equal(op.matmul_t(dense), np.zeros((3, 2)))


def test_csr_from_parts_matches_checked_constructor():
    rng = np.random.default_rng(4)
    matrix = build_batch([_example(rng, 12)]).norm_adj.tocsr()
    clone = csr_from_parts(
        matrix.data, matrix.indices, matrix.indptr, matrix.shape
    )
    assert clone.shape == matrix.shape
    assert clone.nnz == matrix.nnz
    assert np.array_equal(clone.toarray(), matrix.toarray())
    assert np.array_equal((clone.T @ np.eye(12 + 1)[:12]), (matrix.T @ np.eye(13)[:12]))


def test_as_sparse_op_passthrough_and_caching():
    rng = np.random.default_rng(5)
    matrix = build_batch([_example(rng, 9)]).norm_adj
    op = as_sparse_op(matrix)
    assert as_sparse_op(op) is op
    assert op.ell is op.ell  # cached
    assert op.ell_t is op.ell_t
    assert op.csr is op.csr


def test_graph_batch_operator_cached_and_preseeded():
    rng = np.random.default_rng(6)
    examples = [_example(rng, int(rng.integers(3, 20))) for _ in range(8)]
    batch = build_batch(examples)
    assert batch.operator is batch.operator  # one conversion per batch
    assembler = BatchAssembler(examples)
    assembled = assembler.assemble(np.arange(len(examples)))
    assert "operator" in assembled.__dict__  # pre-seeded, not rebuilt


@pytest.mark.parametrize("backend", ["ell"] + (["numba"] if numba_available() else []))
def test_assembler_stitched_ell_matches_from_csr(backend):
    """Per-example ELL blocks stitched once per split == per-batch build."""
    rng = np.random.default_rng(7)
    examples = [
        _example(rng, int(rng.integers(2, 25)), kind)
        for kind in ("random", "star", "empty", "random", "isolated", "random")
    ]
    with spmm_scope(backend):
        assembler = BatchAssembler(examples)
        order = rng.permutation(len(examples))
        batch = assembler.assemble(order)
        op = batch.operator
        assert op._ell is not None  # stitched at assemble time
        dense = rng.standard_normal((batch.n_nodes, 3))
        assert np.array_equal(op.matmul(dense), batch.norm_adj.tocsr() @ dense)
        assert np.array_equal(
            op.matmul_t(dense), batch.norm_adj.tocsr().T @ dense
        )


def test_batch_cache_prepares_operators():
    rng = np.random.default_rng(8)
    examples = [_example(rng, int(rng.integers(3, 15))) for _ in range(7)]
    with spmm_scope("ell"):
        cache = BatchCache(examples, batch_size=3)
        for batch in cache:
            assert batch.operator._ell is not None
            assert batch.operator._ell_t is not None


def test_backend_selection_and_scope():
    previous = spmm_backend()
    with spmm_scope("ell"):
        assert spmm_backend() == "ell"
        with spmm_scope("scipy"):
            assert spmm_backend() == "scipy"
        assert spmm_backend() == "ell"
    assert spmm_backend() == previous
    with pytest.raises(ValueError):
        set_spmm_backend("cusparse")


@pytest.mark.skipif(numba_available(), reason="numba installed; no fallback")
def test_numba_fallback_warns():
    with pytest.warns(RuntimeWarning, match="falling back"):
        with spmm_scope("numba"):
            assert spmm_backend() == "ell"


# ---------------------------------------------------------------- gradients
def _num_grad(fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


@pytest.mark.parametrize("backend", BACKENDS)
def test_graph_conv_gradients(backend):
    """Analytic spmm backward vs central differences, per backend."""
    rng = np.random.default_rng(9)
    batch = build_batch(
        [_example(rng, 6), _example(rng, 9, "star"), _example(rng, 3, "empty")]
    )
    op = SparseOp.from_csr(batch.norm_adj)
    h0 = rng.standard_normal((batch.n_nodes, 4))
    w0 = rng.standard_normal((4, 3))
    seed_grad = rng.standard_normal((batch.n_nodes, 3))

    with spmm_scope(backend):
        h = Tensor(h0.copy(), requires_grad=True)
        w = Tensor(w0.copy(), requires_grad=True)
        out = graph_conv(op, h, w, workspace=Workspace())
        out.backward(seed_grad)

        def value(href=h0, wref=w0):
            z = np.tanh(batch.norm_adj.tocsr() @ (href @ wref))
            return float((z * seed_grad).sum())

        num_h = _num_grad(lambda: value(), h0)
        num_w = _num_grad(lambda: value(), w0)
    np.testing.assert_allclose(h.grad, num_h, rtol=1e-6, atol=1e-8)
    np.testing.assert_allclose(w.grad, num_w, rtol=1e-6, atol=1e-8)


@pytest.mark.parametrize("backend", BACKENDS)
def test_graph_conv_backward_bit_matches_scipy_composition(backend):
    """The fused kernel's gradients equal the unfused scipy chain, bitwise."""
    rng = np.random.default_rng(10)
    batch = build_batch([_example(rng, 11), _example(rng, 17, "star")])
    matrix = batch.norm_adj.tocsr()
    h0 = rng.standard_normal((batch.n_nodes, 5))
    w0 = rng.standard_normal((5, 2))
    seed_grad = rng.standard_normal((batch.n_nodes, 2))

    with spmm_scope(backend):
        h = Tensor(h0, requires_grad=True)
        w = Tensor(w0, requires_grad=True)
        out = graph_conv(batch.operator, h, w, workspace=Workspace())
        out.backward(seed_grad)

    # reference: explicit composition with scipy kernels
    z = np.tanh(matrix @ (h0 @ w0))
    gt = seed_grad * (1.0 - z * z)
    ga = matrix.T @ gt
    assert np.array_equal(out.data, z)
    assert np.array_equal(w.grad, h0.T @ ga)
    assert np.array_equal(h.grad, ga @ w0.T)


def test_graph_conv_out_slice_destination():
    """Writing the activation into a strided buffer slice changes nothing."""
    rng = np.random.default_rng(11)
    batch = build_batch([_example(rng, 8), _example(rng, 5)])
    h0 = rng.standard_normal((batch.n_nodes, 4))
    w0 = rng.standard_normal((4, 3))
    h = Tensor(h0, requires_grad=True)
    w = Tensor(w0, requires_grad=True)
    plain = graph_conv(batch.norm_adj, h, w)
    buffer = np.empty((batch.n_nodes, 7))
    sliced = graph_conv(batch.operator, Tensor(h0), Tensor(w0), out=buffer[:, 2:5])
    assert np.array_equal(plain.data, sliced.data)
    assert sliced.data.base is buffer


# ------------------------------------------------- forward workspace pieces
def test_workspace_resident_growth_and_reuse():
    ws = Workspace()
    a = ws.resident("x", (10, 4), np.float64)
    b = ws.resident("x", (8, 4), np.float64)
    assert b.base is a.base  # same slot, smaller lease
    c = ws.resident("x", (32, 4), np.float64)
    assert c.shape == (32, 4)
    assert ws.resident("y", (10, 4), np.float64).base is not c.base
    assert ws.resident("x", (10, 5), np.float64).shape == (10, 5)


def test_gather_stack_matches_gather_of_concat():
    rng = np.random.default_rng(12)
    tensors_a = [Tensor(rng.standard_normal((9, c)), requires_grad=True) for c in (3, 2, 1)]
    tensors_b = [Tensor(t.data.copy(), requires_grad=True) for t in tensors_a]
    indices = np.array([0, 8, -1, 4, 2, -1, 7])
    buffer = np.empty((len(indices), 6))

    fused = gather_stack(tensors_a, indices, buffer)
    reference = concat(tensors_b, axis=1).gather_rows(indices, unique=True)
    assert np.array_equal(fused.data, reference.data)

    seed_grad = rng.standard_normal(fused.shape)
    fused.backward(seed_grad)
    reference.backward(seed_grad.copy())
    for ta, tb in zip(tensors_a, tensors_b):
        assert np.array_equal(ta.grad, tb.grad)


def test_stack_columns_matches_concat_gradient():
    rng = np.random.default_rng(13)
    parts = [Tensor(rng.standard_normal((6, c)), requires_grad=True) for c in (2, 3)]
    buffer = np.concatenate([p.data for p in parts], axis=1)
    stacked = stack_columns(parts, buffer)
    ref_parts = [Tensor(p.data.copy(), requires_grad=True) for p in parts]
    reference = concat(ref_parts, axis=1)
    assert np.array_equal(stacked.data, reference.data)
    seed_grad = rng.standard_normal(stacked.shape)
    stacked.backward(seed_grad)
    reference.backward(seed_grad.copy())
    for pa, pb in zip(parts, ref_parts):
        assert np.array_equal(pa.grad, pb.grad)
    with pytest.raises(ValueError):
        stack_columns(parts, np.empty((6, 9)))
