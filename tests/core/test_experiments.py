"""Smoke tests for the experiment runners at miniature scale."""

import math

import pytest

from repro.experiments import (
    CI_SCALE,
    PAPER_SCALE,
    ExperimentScale,
    active_scale,
    attack_benchmark,
    format_fig2,
    format_fig7,
    format_fig8,
    format_fig9,
    format_fig10,
    lock_with,
    run_fig2,
    run_fig9,
    summarize_fig7,
)
from repro.experiments.common import format_records
from repro.locking import DMUX_SCHEME

TINY = ExperimentScale(
    name="tiny",
    iscas=("c1355",),
    itc=(),
    circuit_scale_iscas=0.1,
    circuit_scale_itc=0.1,
    iscas_keys=(6,),
    itc_keys=(),
    h=1,
    epochs=2,
    hd_patterns=256,
)


def test_scale_presets_and_env(monkeypatch):
    assert CI_SCALE.name == "ci"
    assert PAPER_SCALE.name == "paper"
    assert PAPER_SCALE.iscas_keys == (64, 128, 256)
    monkeypatch.delenv("REPRO_EXPERIMENT_SCALE", raising=False)
    assert active_scale() is CI_SCALE
    monkeypatch.setenv("REPRO_EXPERIMENT_SCALE", "paper")
    assert active_scale() is PAPER_SCALE


def test_scale_benchmark_enumeration():
    rows = CI_SCALE.benchmarks()
    names = [r[0] for r in rows]
    assert names == list(CI_SCALE.iscas) + list(CI_SCALE.itc)
    for _, scale, keys in rows:
        assert 0 < scale <= 1
        assert keys


def test_lock_with_dispatch():
    from repro.benchgen import load_benchmark

    base = load_benchmark("c1355", scale=0.1)
    locked = lock_with(DMUX_SCHEME, base, key_size=4, seed=0)
    assert locked.scheme == DMUX_SCHEME
    with pytest.raises(KeyError):
        lock_with("nope", base, key_size=4)


def test_attack_benchmark_record():
    record = attack_benchmark(
        "c1355", DMUX_SCHEME, 6, TINY, TINY.circuit_scale_iscas, seed=0
    )
    assert record.benchmark == "c1355"
    assert record.metrics.n_total == 6
    assert len(record.predicted_key) == 6
    assert record.runtime_seconds > 0
    assert "result" in record.extras
    table = format_records([record], "t")
    assert "c1355" in table


def test_fig2_runner_tiny():
    rows = run_fig2(scale=TINY, n_copies=2, key_size=6, seed=1)
    # 1 benchmark x 2 schemes x 2 attacks
    assert len(rows) == 4
    assert {r.attack for r in rows} == {"SCOPE", "SWEEP"}
    for row in rows:
        assert 0.0 <= row.metrics.accuracy <= 1.0
    assert "Fig. 2" in format_fig2(rows)


def test_fig9_runner_tiny():
    rows = run_fig9(scale=TINY, thresholds=(0.0, 1.0), seed=1)
    assert len(rows) == 4  # 2 schemes x 2 thresholds
    final = [r for r in rows if r.threshold == 1.0]
    assert all(r.precision == 1.0 for r in final)
    assert "Fig. 9" in format_fig9(rows)


def test_fig7_summary_shape():
    record = attack_benchmark(
        "c1355", DMUX_SCHEME, 6, TINY, TINY.circuit_scale_iscas, seed=2
    )
    summary = summarize_fig7([record])
    assert set(summary) >= {"accuracy", "precision", "kpa"}
    assert not math.isnan(summary["accuracy"])
    assert "Summary" in format_fig7([record])


def test_formatters_handle_empty_gracefully():
    assert "Fig. 8" in format_fig8([])
    assert "Fig. 10" in format_fig10([])
