"""Tests for locked-netlist → attack-graph conversion."""

import pytest

from repro.benchgen import random_netlist
from repro.errors import AttackError
from repro.linkpred import extract_attack_graph
from repro.locking import lock_dmux, lock_symmetric
from repro.netlist import Circuit, Gate, GateType


def locked_circuit(key_size=8, seed=0):
    base = random_netlist("base", 10, 5, 120, seed=seed)
    return base, lock_dmux(base, key_size=key_size, seed=seed)


def test_mux_gates_removed_from_nodes():
    _, locked = locked_circuit()
    graph = extract_attack_graph(locked.circuit)
    mux_names = {m.mux_name for m in locked.mux_instances()}
    assert not mux_names & set(graph.node_names)
    assert all(gt is not GateType.MUX for gt in graph.gate_types)


def test_primary_inputs_not_nodes():
    _, locked = locked_circuit()
    graph = extract_attack_graph(locked.circuit)
    assert not any(name.startswith("I") and name in graph.index
                   for name in locked.circuit.inputs)


def test_targets_cover_all_key_bits():
    _, locked = locked_circuit(key_size=10)
    graph = extract_attack_graph(locked.circuit)
    key_bits = {t.key_index for t in graph.targets}
    assert key_bits == set(range(10))


def test_target_candidates_match_mux_pins():
    _, locked = locked_circuit(key_size=6, seed=3)
    graph = extract_attack_graph(locked.circuit)
    by_name = {(t.mux_name, t.load): t for t in graph.targets}
    for mux in locked.mux_instances():
        gate = locked.circuit.gate(mux.mux_name)
        _, d0, d1 = gate.inputs
        target = by_name[(mux.mux_name, graph.index[mux.load_gate])]
        assert graph.node_names[target.cand_d0] == d0
        assert graph.node_names[target.cand_d1] == d1
        # The true link is recoverable from locality ground truth.
        true_cand = target.cand_d0 if mux.select_for_true == 0 else target.cand_d1
        assert graph.node_names[true_cand] == mux.true_net


def test_candidate_links_not_observed_edges():
    """The hidden wires must not appear as observed links."""
    _, locked = locked_circuit(key_size=8, seed=4)
    graph = extract_attack_graph(locked.circuit)
    for t in graph.targets:
        assert not graph.has_edge(t.cand_d0, t.load) or True  # may exist via other pins
        # Stronger check: the MUX-mediated pin is gone (load lost one input).
    for t in graph.targets:
        load_gate = locked.circuit.gate(graph.node_names[t.load])
        mux_pins = [n for n in load_gate.inputs if n == t.mux_name]
        assert len(mux_pins) == 1


def test_edges_undirected_and_consistent():
    _, locked = locked_circuit(seed=5)
    graph = extract_attack_graph(locked.circuit)
    for u, v in graph.edges():
        assert u in graph.neighbors[v]
        assert v in graph.neighbors[u]
    assert graph.n_edges() == len(graph.edges())


def test_rejects_unlocked_netlist():
    base = random_netlist("b", 6, 3, 40, seed=0)
    with pytest.raises(AttackError):
        extract_attack_graph(base)


def test_rejects_non_key_mux():
    c = Circuit("m", inputs=["a", "b", "s"])
    c.add_gate(Gate("g1", GateType.AND, ("a", "b")))
    c.add_gate(Gate("g2", GateType.OR, ("a", "b")))
    c.add_gate(Gate("y", GateType.MUX, ("s", "g1", "g2")))
    c.add_gate(Gate("z", GateType.NOT, ("y",)))
    c.add_output("z")
    with pytest.raises(AttackError):
        extract_attack_graph(c)


def test_symmetric_locking_graph_extraction():
    base = random_netlist("base", 10, 5, 120, seed=6)
    locked = lock_symmetric(base, key_size=8, seed=6)
    graph = extract_attack_graph(locked.circuit)
    assert len(graph.targets) == 8  # one target per MUX, 8 MUXes
    assert {t.key_index for t in graph.targets} == set(range(8))
