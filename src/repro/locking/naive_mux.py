"""Naive MUX-based locking (paper Fig. 1 ③) — the SAAM-vulnerable baseline.

Each key bit inserts one MUX between a randomly chosen true wire and a
random decoy, with no regard for circuit reduction: when the true wire has
a single load, the wrong key value leaves it dangling — the structural
signal SAAM exploits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LockingError
from repro.locking.common import Locality, LockedCircuit, Strategy, insert_key_mux
from repro.locking.keys import format_key
from repro.netlist import Circuit, GateType

__all__ = ["lock_naive_mux", "NAIVE_MUX_SCHEME"]

NAIVE_MUX_SCHEME = "naive-MUX"

_TRIES = 100


def lock_naive_mux(
    circuit: Circuit,
    key_size: int,
    seed: int = 0,
    name: str | None = None,
    prefer_single_output: bool = True,
) -> LockedCircuit:
    """Lock *circuit* with naive MUX locking.

    Args:
        prefer_single_output: bias true-wire selection to single-load nets,
            which maximizes the SAAM-visible reduction (the paper's point is
            that naive insertion does not avoid this).
    """
    if key_size < 1:
        raise LockingError("key_size must be positive")
    rng = np.random.default_rng(seed)
    locked = circuit.copy(name or f"{circuit.name}_naive_k{key_size}")
    localities: list[Locality] = []

    for bit in range(key_size):
        inserted = None
        for _ in range(_TRIES):
            sources = [
                n
                for n in locked.gate_names
                if locked.gate(n).gate_type is not GateType.MUX
            ]
            if prefer_single_output:
                singles = [n for n in sources if locked.fanout_size(n) == 1]
                pool = singles or sources
            else:
                pool = sources
            if not pool:
                break
            true_net = pool[int(rng.integers(len(pool)))]
            loads = [
                g
                for g in locked.fanout(true_net)
                if locked.gate(g).gate_type is not GateType.MUX
            ]
            if not loads:
                continue
            load = loads[int(rng.integers(len(loads)))]
            decoys = [
                n for n in sources if n != true_net and n != load
            ]
            if not decoys:
                continue
            decoy = decoys[int(rng.integers(len(decoys)))]
            try:
                inserted = insert_key_mux(
                    locked, bit, true_net=true_net, false_net=decoy,
                    load_gate=load, rng=rng,
                )
            except LockingError:
                continue
            break
        if inserted is None:
            raise LockingError(
                f"{circuit.name}: cannot place naive MUX for key bit {bit}"
            )
        # Naive locking has no pair structure; each MUX is its own locality
        # tagged S2 (single MUX, single key input).
        localities.append(Locality(Strategy.S2, (inserted,)))

    key_bits = {
        m.key_index: m.select_for_true
        for loc in localities
        for m in loc.muxes
    }
    locked.validate()
    return LockedCircuit(
        circuit=locked,
        key=format_key(key_bits, key_size),
        localities=localities,
        scheme=NAIVE_MUX_SCHEME,
        original_name=circuit.name,
    )
