"""The pluggable job-bus seam: how pending ``AttackJob``s reach workers.

The :class:`~repro.experiments.runner.ExperimentRunner` plans a grid,
dedupes it against its caches, and hands the surviving *unique* jobs to a
:class:`JobBus`.  The bus decides **where** they execute:

* :class:`~repro.bus.local.LocalBus` — this process (serial) or a
  ``ProcessPoolExecutor`` on this host.  The behavior-preserving default.
* :class:`~repro.bus.spool.SpoolBus` — a filesystem spool directory
  shared with N independent ``repro worker`` processes (any host that
  mounts the directory and the artifact store).
* :class:`~repro.bus.socketbus.SocketBus` — a stdlib TCP queue embedded
  in the coordinator; workers connect with ``repro worker --bus-addr``.

The exchange format is fixed by the scheduler boundary PR 5 built:
a job travels as ``{store_key, circuit payload, config dict}`` and a
result is exactly the encoded attack artifact the store persists — no
backend ever ships live library objects, so every backend is
bit-identical to serial execution by construction.

A bus is a generator factory: :meth:`JobBus.run` yields
``(job, artifact_payload, persisted)`` tuples as jobs finish, in
completion order.  ``persisted`` tells the runner whether the artifact
already landed in the shared store (spool workers write it there
themselves) or still needs a write-through.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import ReproError
from repro.faults.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.runner import AttackJob
    from repro.store import ArtifactStore

__all__ = [
    "BLAS_THREADS_ENV",
    "BUS_JOB_KIND",
    "BUS_LEASE_BATCH_ENV",
    "BUS_LIVENESS_ENV",
    "BUS_MESSAGE_KIND",
    "BUS_QUARANTINE_KIND",
    "DEFAULT_LEASE_BATCH",
    "DEFAULT_LIVENESS",
    "DEFAULT_PIPELINE",
    "DEFAULT_WORKER_BLAS_THREADS",
    "JOB_ARTIFACT_KINDS",
    "SERVE_ADDR_ENV",
    "BusError",
    "BusStats",
    "JobBus",
    "RetryPolicy",
    "decode_job",
    "encode_job",
    "job_artifact_kind",
    "resolve_bus",
]

#: Codec ``kind`` tags — a spool file or wire frame of the wrong flavour
#: raises :class:`~repro.store.codec.CodecError` instead of misdecoding.
BUS_JOB_KIND = "bus-job"
BUS_QUARANTINE_KIND = "bus-quarantine"
BUS_MESSAGE_KIND = "bus-message"

#: Environment knobs shared by the CLI entry points.
BUS_ENV = "REPRO_BUS"
BUS_DIR_ENV = "REPRO_BUS_DIR"
BUS_ADDR_ENV = "REPRO_BUS_ADDR"
BUS_POLL_ENV = "REPRO_BUS_POLL"
BUS_STALE_ENV = "REPRO_BUS_STALE"
BUS_MAX_ATTEMPTS_ENV = "REPRO_BUS_MAX_ATTEMPTS"
BUS_TIMEOUT_ENV = "REPRO_BUS_TIMEOUT"
BUS_LIVENESS_ENV = "REPRO_BUS_LIVENESS"
BUS_LEASE_BATCH_ENV = "REPRO_BUS_LEASE_BATCH"
BLAS_THREADS_ENV = "REPRO_BLAS_THREADS"
SERVE_ADDR_ENV = "REPRO_SERVE_ADDR"

#: A lease with no heartbeat for this many seconds is presumed dead and
#: returns to pending (the holder was SIGKILLed / lost power / vanished).
DEFAULT_STALE_AFTER = 30.0
#: Requeue budget: attempt N of a job that has already failed or expired
#: ``N >= DEFAULT_MAX_ATTEMPTS`` times is quarantined instead of retried.
DEFAULT_MAX_ATTEMPTS = 3
#: Coordinator / worker poll interval (seconds).
DEFAULT_POLL = 0.25
#: Graceful-degradation deadline: a distributed bus that makes no
#: progress — no completions, no live leases, no executing connections —
#: for this long fails its remaining jobs over to in-process execution
#: instead of hanging a figure run on a dead worker fleet.  ``timeout``
#: (raise) still wins when set tighter; 0/None disables fail-over.
DEFAULT_LIVENESS = 300.0
#: Workers cap their OpenBLAS pool at this many threads.  The attack
#: jobs are single-core (pinning BLAS to 1 thread leaves serial runtime
#: unchanged — measured in BENCH_training.json ``bench_bus``), while
#: concurrent workers each waking a cores-wide spin pool double per-job
#: wall-clock.  ``repro worker --blas-threads 0`` opts out.
DEFAULT_WORKER_BLAS_THREADS = 1
#: How many leases a spool worker claims per directory scan.  1 keeps
#: the PR-9 chaos-drill semantics (one held lease, one heartbeat); the
#: spool bench raises it to amortize the sorted-scan cost on small jobs.
DEFAULT_LEASE_BATCH = 1
#: Jobs a serve worker keeps in flight on its persistent connection.
#: The worker executes serially; a depth of 2 means the next job is
#: already buffered in the socket when the current one finishes, hiding
#: the scheduler round-trip entirely.
DEFAULT_PIPELINE = 2


class BusError(ReproError):
    """A job bus could not deliver a result (quarantine, timeout, wire)."""


@dataclass
class BusStats:
    """Coordinator-side counters, mirrored into CI job summaries.

    ``adopt_seconds`` / ``submit_seconds`` measure pure bus overhead —
    encoding + enqueueing and polling + decoding — never worker compute,
    which is what ``benchmarks/bench_bus.py`` records per job.
    """

    submitted: int = 0
    completed: int = 0
    adopted: int = 0
    requeues: int = 0
    quarantined: int = 0
    failed_over: int = 0
    submit_seconds: float = 0.0
    adopt_seconds: float = 0.0

    def summary(self) -> str:
        text = (
            f"jobs={self.submitted} completed={self.completed} "
            f"(+{self.adopted} adopted from store) "
            f"requeues={self.requeues} quarantined={self.quarantined}"
        )
        if self.failed_over:
            # Only when nonzero: clean-run summaries keep their exact
            # shape for the transcript parity gates.
            text += f" failed-over={self.failed_over}"
        if self.completed:
            overhead = (
                (self.submit_seconds + self.adopt_seconds)
                / self.completed
                * 1000.0
            )
            text += f" bus-overhead={overhead:.1f}ms/job"
        return text


class JobBus:
    """Abstract transport executing :class:`AttackJob`s somewhere.

    Subclasses implement :meth:`run`; :meth:`close` releases whatever
    the backend holds (worker pool, listening socket).  A bus instance
    is reused across every ``runner.run()`` wave of a figure session.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.stats = BusStats()

    def run(
        self, jobs: "list[AttackJob]"
    ) -> "Iterator[tuple[AttackJob, dict, bool]]":
        """Execute *jobs*; yield ``(job, artifact_payload, persisted)``.

        Results arrive in completion order.  A terminally failed job
        raises :class:`BusError` (after surviving results have been
        yielded, where the backend can manage it).
        """
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release backend resources (idempotent)."""

    def _failover(
        self, jobs: "list[AttackJob]", reason: str, log=print
    ) -> "Iterator[tuple[AttackJob, dict, bool]]":
        """Graceful degradation: execute *jobs* in this process.

        The distributed backends call this when their liveness deadline
        expires with no sign of a worker fleet — the grid finishes on
        the coordinator (slowly, serially) instead of hanging forever.
        Yields the same ``(job, payload, persisted=False)`` tuples as a
        live bus, so the runner's write-through path persists results
        exactly as if a worker had returned them.
        """
        from repro.experiments.runner import execute_job

        log(
            f"bus[{self.name}]: {reason} — failing {len(jobs)} job(s) "
            "over to in-process execution"
        )
        for job in jobs:
            payload = execute_job(job)
            self.stats.completed += 1
            self.stats.failed_over += 1
            yield job, payload, False


# ---------------------------------------------------------------------------
# Job payloads — the spool-file / wire shape of a job
# ---------------------------------------------------------------------------
#: ``job.kind`` → store kind the finished artifact lands under.  Workers
#: use this to warm-skip and publish without decoding the job first.
JOB_ARTIFACT_KINDS = {"attack": "attacks", "baseline": "baselines"}


def job_artifact_kind(kind: str) -> str:
    """Store kind for a job-kind tag (``"attack"`` for legacy payloads)."""
    try:
        return JOB_ARTIFACT_KINDS[kind]
    except KeyError:
        raise BusError(
            f"unknown job kind {kind!r}; choose from "
            f"{sorted(JOB_ARTIFACT_KINDS)}"
        )


def encode_job(job) -> dict:
    """Codec-safe payload of one job (no live dataclasses cross hosts).

    ``kind`` dispatches :func:`decode_job`; payloads written before the
    field existed decode as MuxLink attack jobs.  Baseline jobs addi-
    tionally carry the encoded training locks (SWEEP's corpus, keys
    included — the exchange format is store payloads all the way down).
    """
    payload = {
        "kind": getattr(job, "kind", "attack"),
        "store_key": job.store_key,
        "circuit": job.circuit,
        "config": dataclasses.asdict(job.config),
    }
    if payload["kind"] == "baseline":
        payload["train"] = list(job.train)
    return payload


def decode_job(payload: dict):
    kind = payload.get("kind", "attack")
    if kind == "baseline":
        from repro.attacks.baseline import BaselineConfig
        from repro.experiments.runner import BaselineJob

        return BaselineJob(
            store_key=payload["store_key"],
            circuit=payload["circuit"],
            config=BaselineConfig(**payload["config"]),
            train=tuple(payload.get("train") or ()),
        )
    if kind != "attack":
        raise BusError(f"unknown job kind {kind!r} in payload")
    from repro.core import MuxLinkConfig
    from repro.experiments.runner import AttackJob
    from repro.linkpred import TrainConfig

    config = dict(payload["config"])
    config["train"] = TrainConfig(**config["train"])
    return AttackJob(
        store_key=payload["store_key"],
        circuit=payload["circuit"],
        config=MuxLinkConfig(**config),
    )


# ---------------------------------------------------------------------------
# Resolution — one scheme for the CLI, the runner and the benches
# ---------------------------------------------------------------------------
def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


def _env_optional_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else None


def resolve_bus(
    bus: "JobBus | str | None" = None,
    *,
    jobs: int = 0,
    store: "ArtifactStore | None" = None,
    bus_dir: "str | os.PathLike | None" = None,
    bus_addr: str | None = None,
    poll: float | None = None,
    stale_after: float | None = None,
    max_attempts: int | None = None,
    timeout: float | None = None,
    liveness: float | None = None,
    retry: "RetryPolicy | None" = None,
) -> "JobBus":
    """Build the configured bus backend.

    *bus* is a backend name (``local`` / ``spool`` / ``socket``), an
    existing :class:`JobBus` (passed through), or ``None`` — which
    consults ``REPRO_BUS`` and falls back to ``local``.  ``spool`` needs
    a directory (*bus_dir* / ``REPRO_BUS_DIR``) **and** a shared
    artifact store (results travel through it); ``socket`` needs a bind
    address (*bus_addr* / ``REPRO_BUS_ADDR``, default an ephemeral
    localhost port).

    *liveness* is the graceful-degradation deadline (seconds of total
    silence before remaining jobs fail over to in-process execution;
    ``REPRO_BUS_LIVENESS``, default :data:`DEFAULT_LIVENESS`, ``0``
    disables).  *retry* carries the backoff/timeout policy the
    distributed backends share (``REPRO_RETRY_*`` when unset).
    """
    if isinstance(bus, JobBus):
        return bus
    name = (bus or os.environ.get(BUS_ENV, "") or "local").strip().lower()
    poll = _env_float(BUS_POLL_ENV, DEFAULT_POLL) if poll is None else poll
    stale_after = (
        _env_float(BUS_STALE_ENV, DEFAULT_STALE_AFTER)
        if stale_after is None
        else stale_after
    )
    retry = RetryPolicy.from_env() if retry is None else retry
    max_attempts = (
        int(_env_float(BUS_MAX_ATTEMPTS_ENV, retry.max_attempts))
        if max_attempts is None
        else max_attempts
    )
    timeout = _env_optional_float(BUS_TIMEOUT_ENV) if timeout is None else timeout
    if liveness is None:
        liveness = _env_float(BUS_LIVENESS_ENV, DEFAULT_LIVENESS)
    if name == "local":
        from repro.bus.local import LocalBus

        return LocalBus(jobs=jobs)
    if name == "spool":
        from repro.bus.spool import SpoolBus, SpoolDir

        bus_dir = bus_dir or os.environ.get(BUS_DIR_ENV, "").strip()
        if not bus_dir:
            raise BusError(
                "spool bus needs a directory: pass --bus-dir or set "
                f"{BUS_DIR_ENV}"
            )
        if store is None:
            raise BusError(
                "spool bus needs a shared artifact store (results travel "
                "through it): pass --store or set REPRO_STORE"
            )
        spool = SpoolDir(
            bus_dir, stale_after=stale_after, max_attempts=max_attempts
        )
        return SpoolBus(
            spool,
            store,
            poll=poll,
            timeout=timeout,
            liveness=liveness,
            retry=retry,
        )
    if name == "socket":
        from repro.bus.socketbus import SocketBus

        bus_addr = bus_addr or os.environ.get(BUS_ADDR_ENV, "").strip()
        return SocketBus(
            bus_addr or "127.0.0.1:0",
            poll=poll,
            max_attempts=max_attempts,
            timeout=timeout,
            liveness=liveness,
            retry=retry,
        )
    raise BusError(
        f"unknown job bus {name!r}; choose from local, spool, socket"
    )


@dataclass
class QuarantinedJob:
    """One poisoned job, as surfaced by ``SpoolDir.quarantined()``."""

    key: str
    attempts: int
    traceback: str
    payload: dict = field(repr=False, default_factory=dict)
