"""Fig. 7 bench — MuxLink AC/PC/KPA grid plus the paper's summary row."""

from repro.core.metrics import aggregate_metrics
from repro.experiments import active_scale, format_fig7, run_fig7, summarize_fig7


def test_fig7_muxlink_grid(bench_once, runner):
    scale = active_scale()
    records = bench_once(run_fig7, scale=scale, runner=runner)
    print()
    print(format_fig7(records))

    summary = summarize_fig7(records)
    # Shape: MuxLink clearly beats the 50% random-guess floor overall.
    assert summary["kpa"] > 0.6, summary
    assert summary["precision"] > 0.6, summary

    # Shape: every individual cell decides most bits (attack functioning).
    pooled = aggregate_metrics([r.metrics for r in records])
    assert pooled.decision_rate > 0.5
