"""Re-synthesis substrate: constant propagation, cleanup, design features."""

from repro.opt.constprop import propagate_constants
from repro.opt.features import FEATURE_NAMES, design_features, feature_delta
from repro.opt.simplify import cleanup, collapse_buffers, remove_dead_logic

__all__ = [
    "propagate_constants",
    "remove_dead_logic",
    "collapse_buffers",
    "cleanup",
    "FEATURE_NAMES",
    "design_features",
    "feature_delta",
]
