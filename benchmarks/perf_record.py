"""Machine-readable perf records for the bench suite.

Every bench appends its section to one JSON document —
``BENCH_training.json`` by default, overridable via the
``REPRO_BENCH_RECORD`` environment variable — which CI uploads as a build
artifact, seeding the cross-PR performance trajectory.  Sections are
merged read-modify-write so several benches (bench_training, bench_spmm)
can contribute to one record within a CI job.
"""

from __future__ import annotations

import json
import os
import platform
import time

RECORD_SCHEMA = 1


def record_path() -> str:
    return os.environ.get("REPRO_BENCH_RECORD", "BENCH_training.json")


def update_record(section: str, payload: dict) -> str:
    """Merge *payload* under *section* in the shared perf record.

    Returns the record path.  Timestamps and host fingerprints are
    attached at the top level so downstream tooling can normalize runs.
    """
    path = record_path()
    record: dict = {"schema": RECORD_SCHEMA}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            pass
    record["schema"] = RECORD_SCHEMA
    record["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    record.setdefault("host", {})
    record["host"].update(
        {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "ci": bool(os.environ.get("CI")),
        }
    )
    record[section] = payload
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path
