"""The ``repro worker`` loop: lease, execute, publish, repeat.

A worker is a plain process started with either a spool directory
(``repro worker --bus-dir SPOOL --store STORE``) or a coordinator
address (``repro worker --bus-addr HOST:PORT``).  It knows nothing
about figures or grids — it executes
:func:`~repro.experiments.runner.execute_job` on whatever the bus
hands it (MuxLink attack jobs and baseline-attack jobs alike), one job
at a time:

* **spool mode** — lease via atomic rename, heartbeat the lease file
  from a daemon thread while training runs, write the artifact to the
  shared store, drop the lease.  A job whose artifact *already* sits in
  the store is completed without recomputation (the warm-store path),
  and crash recovery is entirely passive: if this process is SIGKILLed
  mid-job the heartbeat stops and any peer reaps the lease.
* **socket mode** — hold one connection to the coordinator (or
  ``repro serve-bus`` broker), request jobs, ship results back over the
  wire.  The server treats a dropped connection as this worker's death.

Workers may start before or after the coordinator, and several may race
over one spool — the lease protocol makes the outcome identical either
way.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import faults
from repro.bus.protocol import (
    BLAS_THREADS_ENV,
    BUS_LEASE_BATCH_ENV,
    DEFAULT_LEASE_BATCH,
    DEFAULT_PIPELINE,
    DEFAULT_POLL,
    DEFAULT_STALE_AFTER,
    DEFAULT_WORKER_BLAS_THREADS,
    BusError,
    RetryPolicy,
    decode_job,
)
from repro.bus.spool import SpoolDir
from repro.bus.threads import limit_blas_threads

if TYPE_CHECKING:  # pragma: no cover
    from repro.store import ArtifactStore

__all__ = ["WorkerStats", "run_worker"]

#: Test hook: seconds to sleep between taking a lease and executing it.
#: Lets the worker-death tests SIGKILL a worker that *definitely* holds a
#: lease without racing a fast smoke-scale attack.  Unset in real use.
TEST_DELAY_ENV = "REPRO_BUS_TEST_DELAY"


@dataclass
class WorkerStats:
    """What one worker process did before exiting."""

    executed: int = 0
    skipped: int = 0  # artifact already in the store; no recompute
    failed: int = 0

    def summary(self) -> str:
        return (
            f"executed={self.executed} skipped={self.skipped} "
            f"failed={self.failed}"
        )


def _test_delay() -> None:
    raw = os.environ.get(TEST_DELAY_ENV, "").strip()
    if raw:
        time.sleep(float(raw))


def _mid_job_faults() -> None:
    """The worker-side fault sites, consulted once per accepted job.

    ``worker.slow_factor`` stalls before execution (long enough for a
    lease to outlive a short ``stale_after`` in a drill);
    ``worker.crash_after_n`` emulates SIGKILL — ``os._exit`` skips every
    ``finally`` and atexit handler, exactly like the real signal, so the
    lease/connection is left dangling for peers to recover.
    """
    stall = faults.fire("worker.slow_factor")
    if stall is not None:
        time.sleep(stall.param)
    if faults.fire("worker.crash_after_n"):
        os._exit(137)


class _Heartbeat:
    """Daemon thread refreshing held spool leases while a job executes.

    With batched leasing a worker holds the executing lease *plus* the
    still-queued remainder of its batch — all of them must keep beating,
    or a reaper requeues jobs this process is about to run.
    """

    def __init__(
        self, spool: SpoolDir, keys: "str | list[str]", interval: float
    ) -> None:
        self._spool = spool
        self._keys = [keys] if isinstance(keys, str) else list(keys)
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            if faults.fire("spool.heartbeat_stall"):
                return  # injected: the heartbeat dies, the job lives on
            self._keys = [k for k in self._keys if self._spool.heartbeat(k)]
            if not self._keys:
                return  # all reaped out from under us; stop touching them


def run_worker(
    bus_dir: "str | os.PathLike | None" = None,
    bus_addr: str | None = None,
    serve_addr: str | None = None,
    store: "ArtifactStore | str | os.PathLike | None" = None,
    poll: float = DEFAULT_POLL,
    stale_after: float = DEFAULT_STALE_AFTER,
    max_attempts: int | None = None,
    idle_timeout: float | None = None,
    max_jobs: int | None = None,
    blas_threads: int | None = None,
    lease_batch: int | None = None,
    pipeline: int = DEFAULT_PIPELINE,
    retry: RetryPolicy | None = None,
    log=print,
) -> WorkerStats:
    """Run the worker loop until idle for *idle_timeout* seconds.

    Exactly one of *bus_dir* (spool mode, requires *store*), *bus_addr*
    (socket mode) or *serve_addr* (persistent pipelined connection to a
    ``repro serve`` front end) must be given.  ``idle_timeout=None``
    runs forever (the daemon deployment); *max_jobs* bounds how many
    jobs this process executes (useful in tests and crash drills).

    *blas_threads* caps the OpenBLAS pool for this process (default 1,
    ``REPRO_BLAS_THREADS`` to override, 0 to leave BLAS alone): the
    jobs are single-core, and a fleet of workers each waking a
    cores-wide BLAS spin pool oversubscribes the host and doubles
    per-job wall-clock.

    *lease_batch* (spool mode) claims up to that many jobs per
    directory scan, amortizing the sorted-scan overhead on small jobs
    (``REPRO_BUS_LEASE_BATCH``, default 1).  *pipeline* (serve mode) is
    the in-flight window this worker advertises to the server.

    *retry* is the socket/serve-mode connect/read policy (timeouts +
    the reconnect backoff schedule); default
    :meth:`RetryPolicy.from_env`.
    """
    chosen = [x for x in (bus_dir, bus_addr, serve_addr) if x is not None]
    if len(chosen) != 1:
        raise BusError(
            "worker needs exactly one of bus_dir, bus_addr or serve_addr"
        )
    if blas_threads is None:
        raw = os.environ.get(BLAS_THREADS_ENV, "").strip()
        blas_threads = int(raw) if raw else DEFAULT_WORKER_BLAS_THREADS
    limit_blas_threads(blas_threads)
    if retry is None:
        retry = RetryPolicy.from_env()
    if lease_batch is None:
        raw = os.environ.get(BUS_LEASE_BATCH_ENV, "").strip()
        lease_batch = int(raw) if raw else DEFAULT_LEASE_BATCH
    if bus_dir is not None:
        return _run_spool_worker(
            bus_dir,
            store,
            poll=poll,
            stale_after=stale_after,
            max_attempts=max_attempts,
            idle_timeout=idle_timeout,
            max_jobs=max_jobs,
            lease_batch=max(1, lease_batch),
            log=log,
        )
    if serve_addr is not None:
        return _run_serve_worker(
            serve_addr,
            poll=poll,
            idle_timeout=idle_timeout,
            max_jobs=max_jobs,
            pipeline=max(1, pipeline),
            retry=retry,
            log=log,
        )
    return _run_socket_worker(
        bus_addr,
        poll=poll,
        idle_timeout=idle_timeout,
        max_jobs=max_jobs,
        retry=retry,
        log=log,
    )


# ---------------------------------------------------------------------------
# Spool mode
# ---------------------------------------------------------------------------
def _run_spool_worker(
    bus_dir,
    store,
    *,
    poll: float,
    stale_after: float,
    max_attempts: int | None,
    idle_timeout: float | None,
    max_jobs: int | None,
    lease_batch: int,
    log,
) -> WorkerStats:
    from repro.bus.protocol import DEFAULT_MAX_ATTEMPTS, job_artifact_kind
    from repro.experiments.runner import execute_job
    from repro.store import resolve_store

    resolved = resolve_store(store)
    if resolved is None:
        raise BusError(
            "spool worker needs the shared artifact store: pass --store "
            "or set REPRO_STORE"
        )
    spool = SpoolDir(
        bus_dir,
        stale_after=stale_after,
        max_attempts=(
            DEFAULT_MAX_ATTEMPTS if max_attempts is None else max_attempts
        ),
    )
    log(f"worker[{os.getpid()}]: spool {spool.root} store {resolved.root}")
    stats = WorkerStats()
    heartbeat_every = max(stale_after / 4.0, 0.05)
    idle_since = time.monotonic()
    done = False
    while not done:
        spool.reap_stale()
        batch = spool.lease_batch(lease_batch)
        if not batch:
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since > idle_timeout
            ):
                break
            time.sleep(poll)
            continue
        idle_since = time.monotonic()
        try:
            while batch:
                key, payload = batch.pop(0)
                job_payload = payload.get("job") or {}
                artifact_kind = job_artifact_kind(
                    job_payload.get("kind", "attack")
                )
                if resolved.has(artifact_kind, key):
                    # Warm store: a peer (or a previous run) already
                    # produced this artifact — adopt, don't recompute.
                    spool.complete(key)
                    stats.skipped += 1
                    log(f"worker[{os.getpid()}]: {key[:12]}… already in store")
                else:
                    _execute_leased(
                        spool, resolved, artifact_kind, key, payload,
                        heartbeat_every, stats, log, execute_job,
                        held_keys=[k for k, _ in batch],
                    )
                if (
                    max_jobs is not None
                    and stats.executed + stats.skipped >= max_jobs
                ):
                    done = True
                    break
        finally:
            # Leases this process will not execute (max_jobs reached,
            # interrupt, a crash between jobs) go straight back to
            # pending instead of waiting out a stale-reap.
            for key, _ in batch:
                spool.release(key, "worker released unexecuted batch lease")
    log(f"worker[{os.getpid()}]: done ({stats.summary()})")
    return stats


def _execute_leased(
    spool: SpoolDir,
    store: "ArtifactStore",
    artifact_kind: str,
    key: str,
    payload: dict,
    heartbeat_every: float,
    stats: WorkerStats,
    log,
    execute_job,
    held_keys: "list[str] | None" = None,
) -> None:
    try:
        job = decode_job(payload["job"])
        with _Heartbeat(spool, [key, *(held_keys or [])], heartbeat_every):
            _test_delay()
            _mid_job_faults()
            artifact = execute_job(job)
        store.put(artifact_kind, key, artifact)
        spool.complete(key)
        stats.executed += 1
        log(f"worker[{os.getpid()}]: completed {key[:12]}…")
    except KeyboardInterrupt:
        spool.release(key, "worker interrupted")
        raise
    except Exception:
        stats.failed += 1
        quarantined = spool.fail(key, traceback.format_exc())
        verb = "quarantined" if quarantined else "requeued"
        log(f"worker[{os.getpid()}]: {verb} {key[:12]}… after failure")


# ---------------------------------------------------------------------------
# Socket mode
# ---------------------------------------------------------------------------
def _run_socket_worker(
    bus_addr: str,
    *,
    poll: float,
    idle_timeout: float | None,
    max_jobs: int | None,
    retry: RetryPolicy,
    log,
) -> WorkerStats:
    import errno

    from repro.bus.socketbus import parse_address, recv_message, send_message
    from repro.experiments.runner import execute_job

    host, port = parse_address(bus_addr)
    stats = WorkerStats()
    idle_since = time.monotonic()
    conn: socket.socket | None = None
    connect_attempt = 0
    log(f"worker[{os.getpid()}]: socket bus {host}:{port}")
    try:
        while True:
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since > idle_timeout
            ):
                break
            if conn is None:
                try:
                    if faults.fire("socket.connect_refused"):
                        raise OSError(
                            errno.ECONNREFUSED,
                            "injected fault socket.connect_refused",
                        )
                    conn = socket.create_connection(
                        (host, port), timeout=retry.connect_timeout
                    )
                    conn.settimeout(retry.read_timeout)
                    connect_attempt = 0
                except OSError:
                    # Coordinator not up yet (workers may legally start
                    # first) — retry on the policy backoff schedule,
                    # floored at the poll interval so a zero-delay
                    # policy cannot busy-spin on a closed port.
                    connect_attempt += 1
                    time.sleep(max(retry.delay(connect_attempt), poll))
                    continue
            try:
                send_message(conn, {"op": "lease"})
                if faults.fire("socket.read_timeout"):
                    raise socket.timeout(
                        "injected fault socket.read_timeout"
                    )
                message = recv_message(conn)
            except OSError:
                message = None
            if message is None:  # server went away; reconnect
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                conn = None
                time.sleep(poll)
                continue
            if message.get("op") == "empty":
                time.sleep(poll)
                continue
            if message.get("op") != "job":  # pragma: no cover - bad server
                continue
            idle_since = time.monotonic()
            key = str(message["key"])
            if faults.fire("socket.frame_eof"):
                # Drop the connection mid-frame: the server sees EOF on
                # a connection with an executing job and requeues it.
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                conn = None
                continue
            try:
                job = decode_job(message["job"])
                _test_delay()
                _mid_job_faults()
                artifact = execute_job(job)
            except Exception:
                stats.failed += 1
                reply = {
                    "op": "failed",
                    "key": key,
                    "traceback": traceback.format_exc(),
                }
            else:
                stats.executed += 1
                reply = {
                    "op": "done",
                    "key": key,
                    # The broker persists the result under this store
                    # kind (a plain coordinator ignores it).
                    "kind": getattr(job, "artifact_kind", "attacks"),
                    "result": artifact,
                }
                log(f"worker[{os.getpid()}]: completed {key[:12]}…")
            try:
                send_message(conn, reply)
            except OSError:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                conn = None  # server will requeue; nothing else to do
            if (
                max_jobs is not None
                and stats.executed + stats.skipped >= max_jobs
            ):
                break
    finally:
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
    log(f"worker[{os.getpid()}]: done ({stats.summary()})")
    return stats


# ---------------------------------------------------------------------------
# Serve mode — persistent pipelined connection to `repro serve`
# ---------------------------------------------------------------------------
def _run_serve_worker(
    serve_addr: str,
    *,
    poll: float,
    idle_timeout: float | None,
    max_jobs: int | None,
    pipeline: int,
    retry: RetryPolicy,
    log,
) -> WorkerStats:
    """Announce, then execute **pushed** jobs off one long connection.

    Unlike socket mode there is no lease round-trip: the server keeps up
    to *pipeline* job frames in flight, so the next job is already
    sitting in this socket's buffer when the current one finishes.  A
    dropped connection (server restart, injected ``serve.accept_drop``)
    reconnects on the retry backoff; the server requeues whatever this
    worker had in flight.
    """
    import errno
    import select

    from repro.bus.socketbus import parse_address, recv_message, send_message
    from repro.experiments.runner import execute_job

    host, port = parse_address(serve_addr)
    stats = WorkerStats()
    idle_since = time.monotonic()
    conn: socket.socket | None = None
    connect_attempt = 0
    log(
        f"worker[{os.getpid()}]: serve {host}:{port} (pipeline {pipeline})"
    )
    try:
        while True:
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since > idle_timeout
            ):
                break
            if conn is None:
                try:
                    if faults.fire("socket.connect_refused"):
                        raise OSError(
                            errno.ECONNREFUSED,
                            "injected fault socket.connect_refused",
                        )
                    conn = socket.create_connection(
                        (host, port), timeout=retry.connect_timeout
                    )
                    conn.settimeout(retry.read_timeout)
                    send_message(
                        conn,
                        {"op": "hello", "role": "worker", "pipeline": pipeline},
                    )
                except OSError:
                    if conn is not None:
                        try:
                            conn.close()
                        except OSError:  # pragma: no cover
                            pass
                        conn = None
                    connect_attempt += 1
                    time.sleep(max(retry.delay(connect_attempt), poll))
                    continue
                connect_attempt = 0
            # Wait for readability on a short slice (so idle_timeout and
            # reconnects stay responsive), then read the *whole* frame
            # under the full read timeout — a poll-length timeout inside
            # recv_message would desync on a partially arrived frame.
            try:
                ready, _, _ = select.select([conn], [], [], poll)
                if not ready:
                    continue
                message = recv_message(conn)
            except OSError:
                message = None
            if message is None:  # server went away; reconnect
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                conn = None
                time.sleep(poll)
                continue
            if message.get("op") != "job":  # pragma: no cover - bad server
                continue
            idle_since = time.monotonic()
            key = str(message["key"])
            try:
                job = decode_job(message["job"])
                _test_delay()
                _mid_job_faults()
                artifact = execute_job(job)
            except Exception:
                stats.failed += 1
                reply = {
                    "op": "failed",
                    "key": key,
                    "traceback": traceback.format_exc(),
                }
            else:
                stats.executed += 1
                reply = {
                    "op": "done",
                    "key": key,
                    "kind": getattr(job, "artifact_kind", "attacks"),
                    "result": artifact,
                }
                log(f"worker[{os.getpid()}]: completed {key[:12]}…")
            try:
                send_message(conn, reply)
            except OSError:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
                conn = None  # server requeues its in-flight window
            if (
                max_jobs is not None
                and stats.executed + stats.skipped >= max_jobs
            ):
                break
    finally:
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
    log(f"worker[{os.getpid()}]: done ({stats.summary()})")
    return stats
