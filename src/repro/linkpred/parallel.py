"""Codec-backed data-parallel training (gradient-sharded epochs).

The semantic unit is the **shard**, not the worker: a
:class:`DataParallelTrainer` splits every optimizer step's shuffled batch
into ``config.grad_shards`` fixed contiguous shards, runs
forward/backward per shard, and combines the per-shard mean-loss
gradients as ``g = Σ_s (n_s / n) g_s`` in ascending shard order.  That
reduction — and the per-``(epoch, step, shard)`` dropout streams spawned
from the trainer seed's :class:`~numpy.random.SeedSequence` — fixes every
bit of the trajectory as a function of the *configuration*.
``config.n_train_workers`` then only decides which process executes each
shard:

* ``n_train_workers == 1`` runs the shards in-process, sequentially, on
  the coordinator's own model;
* ``n_train_workers > 1`` spawns a process pool whose workers each hold
  a private :class:`~repro.gnn.BatchAssembler` over the training split
  and a private model replica.  Per step the coordinator ships its
  weights + shard index lists (round-robin, shard ``s`` to worker
  ``s % W``) as one :func:`repro.store.codec.dumps` message per worker,
  and receives codec-encoded gradients, losses and K-FAC curvature
  statistics back.

Both paths produce bit-identical float64 (and float32) loss curves — the
artifact store exploits exactly this by normalizing ``n_train_workers``
out of the config token while folding ``grad_shards`` in.

Checkpoints need nothing beyond the serial trainer's payload: the
coordinator's dropout stream is never consumed (shard streams are
re-derived from ``(seed, epoch, step, shard)``), so resume is
bit-identical through the ordinary :class:`~repro.linkpred.trainer.Trainer`
machinery.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.gnn import BatchAssembler, DGCNN, GraphExample
from repro.linkpred.dataset import LinkDataset
from repro.linkpred.trainer import TrainConfig, Trainer
from repro.nn import CurvatureCollector, collecting, default_dtype, set_default_dtype

__all__ = ["DataParallelTrainer", "shard_dropout_rng"]

_INIT_KIND = "train-worker-init"
_STEP_KIND = "train-shard-step"
_GRAD_KIND = "train-shard-grads"


def shard_dropout_rng(
    seed: int, epoch: int, step: int, shard: int
) -> np.random.Generator:
    """The dropout stream of one ``(epoch, step, shard)`` cell.

    Spawned from the trainer seed's :class:`~numpy.random.SeedSequence`
    (itself derived from the experiment cell's spawned sequence), so any
    process — coordinator or worker, whatever the worker count — derives
    the identical stream without coordination.  ``seed + 1`` keeps the
    entropy root distinct from the shuffle stream's ``default_rng(seed)``.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed + 1, spawn_key=(epoch, step, shard))
    )


@dataclass
class _ShardResult:
    """One shard's contribution, in coordinator-ready form."""

    n: int
    loss: float
    grads: list[np.ndarray]
    curvature: list[tuple[np.ndarray, np.ndarray, int] | None] | None


def _encode_examples(examples: list[GraphExample]) -> list[dict]:
    return [
        {
            "n_nodes": int(e.n_nodes),
            "edges": np.asarray(e.edges),
            "features": np.asarray(e.features),
            "label": int(e.label),
        }
        for e in examples
    ]


def _decode_examples(payload: list[dict]) -> list[GraphExample]:
    return [
        GraphExample(
            n_nodes=int(e["n_nodes"]),
            edges=e["edges"],
            features=e["features"],
            label=int(e["label"]),
        )
        for e in payload
    ]


def _run_shard(
    model: DGCNN,
    assembler: BatchAssembler,
    collector: CurvatureCollector | None,
    seed: int,
    epoch: int,
    step: int,
    shard: int,
    indices: np.ndarray,
) -> _ShardResult:
    """Forward/backward one shard on *model*; harvest grads (+curvature).

    The one sharded-math kernel — the in-process path and the worker
    processes both run exactly this, which is what makes the worker
    count a pure execution knob.
    """
    model.dropout.rng = shard_dropout_rng(seed, epoch, step, shard)
    model.zero_grad()
    batch = assembler.assemble(indices, reuse_buffers=True)
    loss = model.loss(batch)
    if collector is not None:
        with collecting(collector):
            loss.backward()
        curvature = collector.harvest()
    else:
        loss.backward()
        curvature = None
    # backward() leaves freshly-owned gradient arrays on the parameters;
    # taking the references (instead of copies) is safe because the next
    # shard starts with zero_grad().
    grads = [p.grad for p in model.parameters()]
    return _ShardResult(
        n=int(len(indices)), loss=loss.item(), grads=grads, curvature=curvature
    )


# ---------------------------------------------------------------------------
# Worker process side.  One module-global worker per process, built by the
# pool initializer from a codec message; ``fork`` and ``spawn`` start
# methods both work (the payload travels as plain bytes).
# ---------------------------------------------------------------------------
_WORKER: "_ShardWorker | None" = None


class _ShardWorker:
    def __init__(self, init: dict):
        # Match the coordinator's runtime dtype: with a ``fork`` start
        # method the child inherits it anyway, but under ``spawn`` (or a
        # coordinator inside ``dtype_scope``) the fresh interpreter would
        # silently run float32 and break the bit-identity contract.
        set_default_dtype(np.dtype(str(init["dtype"])))
        self.seed = int(init["seed"])
        examples = _decode_examples(init["examples"])
        self.assembler = BatchAssembler(examples)
        self.model = DGCNN(
            in_features=int(init["feature_width"]),
            k=int(init["k"]),
            seed=self.seed,
        )
        max_dim = init.get("kfac_max_dim") or None
        self.collector = (
            CurvatureCollector(self.model, max_dim=max_dim)
            if init["collect_curvature"]
            else None
        )

    def run(self, task: dict) -> dict:
        self.model.load_state_dict(list(task["params"]))
        self.model.train()
        epoch, step = int(task["epoch"]), int(task["step"])
        # The coordinator decides per step whether curvature statistics
        # are due (cov_every amortization) — workers just obey.
        collector = self.collector if task["collect"] else None
        shards_out = []
        for entry in task["shards"]:
            shard = int(entry["shard"])
            result = _run_shard(
                self.model, self.assembler, collector,
                self.seed, epoch, step, shard, entry["indices"],
            )
            shards_out.append(
                {
                    "shard": shard,
                    "n": result.n,
                    "loss": result.loss,
                    "grads": result.grads,
                    "curvature": (
                        None
                        if result.curvature is None
                        else [
                            None if c is None else {"a": c[0], "g": c[1], "n": c[2]}
                            for c in result.curvature
                        ]
                    ),
                }
            )
        return {"shards": shards_out}


def _init_worker(blob: bytes) -> None:
    global _WORKER
    from repro.store import codec

    _WORKER = _ShardWorker(codec.loads(blob, kind=_INIT_KIND))


def _worker_run(blob: bytes) -> bytes:
    from repro.store import codec

    assert _WORKER is not None, "worker used before initialization"
    return codec.dumps(_WORKER.run(codec.loads(blob, kind=_STEP_KIND)), kind=_GRAD_KIND)


class DataParallelTrainer(Trainer):
    """Gradient-sharded :class:`~repro.linkpred.trainer.Trainer`.

    Everything except the per-step kernel — shuffling, evaluation, early
    stopping, LR scheduling, checkpoint/resume — is inherited; only
    :meth:`_train_step` is replaced by the shard/combine formulation
    described in the module docstring.  Build through
    :func:`~repro.linkpred.trainer.make_trainer`, which routes
    ``grad_shards == 1`` configs to the serial engine.
    """

    def __init__(self, dataset: LinkDataset, config: TrainConfig = TrainConfig()):
        super().__init__(dataset, config)
        self._n_workers = min(config.n_train_workers, config.grad_shards)
        self._pool: ProcessPoolExecutor | None = None

    # ---------------------------------------------------------------- kernel
    def _train_step(self, indices: np.ndarray, step_index: int) -> float:
        shards = [
            part
            for part in np.array_split(indices, self.config.grad_shards)
            if part.size  # a batch smaller than the shard count
        ]
        collect = (
            self.preconditioner is not None
            and self.preconditioner.wants_statistics()
        )
        if self._n_workers > 1 and len(shards) > 1:
            results = self._run_shards_pool(
                self.epoch, step_index, shards, collect
            )
        else:
            results = self._run_shards_local(
                self.epoch, step_index, shards, collect
            )

        n_total = int(sum(result.n for result in results))
        combined: list[np.ndarray] | None = None
        total_loss = 0.0
        for result in results:  # ascending shard order — part of the contract
            weight = result.n / n_total
            total_loss += weight * result.loss
            if combined is None:
                combined = [weight * g for g in result.grads]
            else:
                for acc, g in zip(combined, result.grads):
                    acc += weight * g
        self.optimizer.zero_grad()
        for param, grad in zip(self.model.parameters(), combined):
            param.grad = grad
        if self.preconditioner is not None:
            for result in results:
                if result.curvature is not None:
                    self.preconditioner.absorb(result.curvature)
            self.preconditioner.step()
        self.optimizer.step()
        return total_loss

    # ------------------------------------------------------------- execution
    def _run_shards_local(
        self, epoch: int, step: int, shards: list[np.ndarray], collect: bool
    ) -> list[_ShardResult]:
        collector = self.preconditioner.collector if collect else None
        saved_rng = self.model.dropout.rng
        try:
            return [
                _run_shard(
                    self.model, self.train_assembler, collector,
                    self.config.seed, epoch, step, shard, indices,
                )
                for shard, indices in enumerate(shards)
            ]
        finally:
            # The coordinator's own dropout stream stays unconsumed, so
            # checkpoints carry the same state the pool path would write.
            self.model.dropout.rng = saved_rng

    def _run_shards_pool(
        self, epoch: int, step: int, shards: list[np.ndarray], collect: bool
    ) -> list[_ShardResult]:
        from repro.store import codec

        pool = self._ensure_pool()
        per_worker: list[list[dict]] = [[] for _ in range(self._n_workers)]
        for shard, indices in enumerate(shards):
            per_worker[shard % self._n_workers].append(
                {"shard": shard, "indices": np.asarray(indices)}
            )
        params = self.model.state_dict()
        futures = []
        for worker_shards in per_worker:
            if not worker_shards:
                continue
            blob = codec.dumps(
                {
                    "epoch": epoch,
                    "step": step,
                    "collect": collect,
                    "params": params,
                    "shards": worker_shards,
                },
                kind=_STEP_KIND,
            )
            futures.append(pool.submit(_worker_run, blob))
        by_shard: dict[int, _ShardResult] = {}
        for future in futures:
            reply = codec.loads(future.result(), kind=_GRAD_KIND)
            for entry in reply["shards"]:
                curvature = entry["curvature"]
                by_shard[int(entry["shard"])] = _ShardResult(
                    n=int(entry["n"]),
                    loss=float(entry["loss"]),
                    grads=list(entry["grads"]),
                    curvature=(
                        None
                        if curvature is None
                        else [
                            None if c is None else (c["a"], c["g"], int(c["n"]))
                            for c in curvature
                        ]
                    ),
                )
        return [by_shard[shard] for shard in range(len(shards))]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            from repro.store import codec

            blob = codec.dumps(
                {
                    "seed": self.config.seed,
                    "dtype": str(default_dtype()),
                    "feature_width": self.dataset.feature_width,
                    "k": self.model.k,
                    "collect_curvature": self.preconditioner is not None,
                    "kfac_max_dim": self.config.kfac_max_dim,
                    "examples": _encode_examples(self.dataset.train),
                },
                kind=_INIT_KIND,
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self._n_workers,
                initializer=_init_worker,
                initargs=(blob,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (recreated lazily if fit again)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def fit(self, until_epoch: int | None = None):
        try:
            return super().fit(until_epoch)
        finally:
            self.close()

    def __del__(self):  # best-effort: fit() already closes on every exit
        try:
            self.close()
        except Exception:
            pass
