"""BENCH format reader / writer.

BENCH is the de-facto exchange format of the logic-locking community
(ISCAS-85 / ITC-99 distributions, SWEEP, SCOPE and the released MuxLink
artifacts all use it).  Grammar handled here::

    # comment                      (a leading ``#key=0101`` records the key)
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = MUX(keyinput0, G10, G2)  (extended primitive used by MUX locking)

Gate-name synonyms accepted on input: ``INV``/``NOT``, ``BUFF``/``BUF``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import BenchFormatError
from repro.netlist.circuit import Circuit, Gate
from repro.netlist.gates import GateType

__all__ = ["parse_bench", "load_bench", "write_bench", "dump_bench"]

_SYNONYMS = {
    "INV": GateType.NOT,
    "NOT": GateType.NOT,
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
}

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$")
_GATE_RE = re.compile(r"^([^\s=()]+)\s*=\s*([A-Za-z]+)\s*\(\s*(.*?)\s*\)$")
_KEY_RE = re.compile(r"^#\s*key\s*=\s*([01xX]+)\s*$")


def _gate_type(token: str, line_no: int) -> GateType:
    upper = token.upper()
    if upper in _SYNONYMS:
        return _SYNONYMS[upper]
    try:
        return GateType(upper)
    except ValueError:
        raise BenchFormatError(
            f"line {line_no}: unknown gate type {token!r}"
        ) from None


def parse_bench(text: str, name: str = "circuit") -> tuple[Circuit, str | None]:
    """Parse BENCH *text*.

    Returns:
        ``(circuit, key)`` where *key* is the string from a ``#key=`` comment
        (``None`` when absent).  Gate order in the file need not be
        topological; definitions are resolved after reading the whole file.
    """
    inputs: list[str] = []
    outputs: list[str] = []
    gate_defs: list[tuple[str, GateType, tuple[str, ...]]] = []
    key: str | None = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            match = _KEY_RE.match(line)
            if match:
                key = match.group(1)
            continue
        match = _IO_RE.match(line)
        if match:
            kind, net = match.groups()
            (inputs if kind == "INPUT" else outputs).append(net)
            continue
        match = _GATE_RE.match(line)
        if match:
            out, type_token, arg_text = match.groups()
            args = tuple(a.strip() for a in arg_text.split(",") if a.strip())
            if not args:
                raise BenchFormatError(
                    f"line {line_no}: gate {out!r} has no inputs"
                )
            gate_defs.append((out, _gate_type(type_token, line_no), args))
            continue
        raise BenchFormatError(f"line {line_no}: cannot parse {raw!r}")

    circuit = Circuit(name, inputs=inputs)
    # Definitions may be out of topological order; add in dependency order.
    pending = {out: (gt, args) for out, gt, args in gate_defs}
    if len(pending) != len(gate_defs):
        dupes = sorted(
            {out for out, _, _ in gate_defs}
            - {out for out in dict.fromkeys(o for o, _, _ in gate_defs)}
        )
        raise BenchFormatError(f"duplicate gate definitions: {dupes!r}")
    while pending:
        progressed = False
        for out in list(pending):
            gate_type, args = pending[out]
            if all(circuit.has_net(a) for a in args):
                circuit.add_gate(Gate(out, gate_type, args))
                del pending[out]
                progressed = True
        if not progressed:
            stuck = sorted(pending)[:8]
            raise BenchFormatError(
                f"unresolvable nets (undriven or cyclic): {stuck!r}"
            )
    for po in outputs:
        circuit.add_output(po)
    circuit.validate()
    return circuit, key


def load_bench(path: str | Path) -> tuple[Circuit, str | None]:
    """Read a BENCH file from disk; circuit name is the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit, key: str | None = None) -> str:
    """Serialize *circuit* to BENCH text (topologically ordered gates)."""
    lines = [f"# {circuit.name}"]
    if key is not None:
        lines.append(f"#key={key}")
    lines.extend(f"INPUT({pi})" for pi in circuit.inputs)
    lines.extend(f"OUTPUT({po})" for po in circuit.outputs)
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        args = ", ".join(gate.inputs)
        lines.append(f"{name} = {gate.gate_type.value}({args})")
    return "\n".join(lines) + "\n"


def dump_bench(circuit: Circuit, path: str | Path, key: str | None = None) -> None:
    """Write *circuit* to *path* in BENCH format."""
    Path(path).write_text(write_bench(circuit, key=key))
