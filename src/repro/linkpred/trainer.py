"""DGCNN training loop for link prediction (paper Sec. III-D / IV).

Follows the paper's recipe: Adam, 100 epochs, initial learning rate 1e-4,
keep the parameters that perform best on the 10 % validation split.
CI-scale experiments pass smaller epoch counts through the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.gnn import DGCNN, GraphExample, build_batch, choose_sortpool_k
from repro.linkpred.dataset import LinkDataset
from repro.nn import Adam

__all__ = ["TrainConfig", "TrainHistory", "train_link_predictor", "score_examples"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of the link-prediction GNN.

    Defaults are the paper's settings; ``epochs`` is the main knob CI-scale
    runs turn down.
    """

    epochs: int = 100
    learning_rate: float = 1e-4
    batch_size: int = 50
    sortpool_percentile: float = 0.6
    seed: int = 0


@dataclass
class TrainHistory:
    """Per-epoch train loss, validation loss and validation accuracy."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_accuracy: float = 0.0
    best_val_loss: float = float("inf")


def _evaluate(
    model: DGCNN, examples: list[GraphExample], batch_size: int
) -> tuple[float, float]:
    """``(mean cross-entropy, accuracy)`` over *examples* in eval mode."""
    if not examples:
        return float("nan"), float("nan")
    correct = 0
    loss_sum = 0.0
    for start in range(0, len(examples), batch_size):
        chunk = examples[start : start + batch_size]
        probs = model.predict_proba(build_batch(chunk))
        labels = np.array([e.label for e in chunk])
        predicted = (probs > 0.5).astype(int)
        correct += int((predicted == labels).sum())
        clipped = np.clip(np.where(labels == 1, probs, 1 - probs), 1e-12, 1.0)
        loss_sum += float(-np.log(clipped).sum())
    return loss_sum / len(examples), correct / len(examples)


def _accuracy(model: DGCNN, examples: list[GraphExample], batch_size: int) -> float:
    return _evaluate(model, examples, batch_size)[1]


def train_link_predictor(
    dataset: LinkDataset, config: TrainConfig = TrainConfig()
) -> tuple[DGCNN, TrainHistory]:
    """Train a DGCNN on *dataset*, restoring the best-validation weights.

    Returns:
        ``(model, history)``; the model is in eval mode.
    """
    if not dataset.train:
        raise TrainingError("empty training split")
    k = choose_sortpool_k(
        dataset.subgraph_sizes or [e.n_nodes for e in dataset.train],
        percentile=config.sortpool_percentile,
    )
    model = DGCNN(in_features=dataset.feature_width, k=k, seed=config.seed)
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    rng = np.random.default_rng(config.seed)

    history = TrainHistory()
    best_state = model.state_dict()
    examples = list(dataset.train)
    for epoch in range(config.epochs):
        model.train()
        order = rng.permutation(len(examples))
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, len(examples), config.batch_size):
            chunk = [examples[i] for i in order[start : start + config.batch_size]]
            batch = build_batch(chunk)
            optimizer.zero_grad()
            loss = model.loss(batch)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            n_batches += 1
        history.train_loss.append(epoch_loss / max(n_batches, 1))

        val_loss, val_acc = _evaluate(model, dataset.validation, config.batch_size)
        history.val_loss.append(val_loss)
        history.val_accuracy.append(val_acc)
        # Model selection on validation *loss*: with small validation sets
        # the quantized accuracy makes early flukes win; cross-entropy is a
        # smoother criterion.  With no validation split the final weights win.
        if dataset.validation and val_loss <= history.best_val_loss:
            history.best_val_loss = val_loss
            history.best_val_accuracy = val_acc
            history.best_epoch = epoch
            best_state = model.state_dict()

    if dataset.validation and history.best_epoch >= 0:
        model.load_state_dict(best_state)
    model.eval()
    return model, history


def score_examples(
    model: DGCNN, examples: list[GraphExample], batch_size: int = 50
) -> np.ndarray:
    """Likelihood of "link exists" for each example (paper step 5)."""
    if not examples:
        return np.empty(0)
    scores: list[np.ndarray] = []
    for start in range(0, len(examples), batch_size):
        chunk = examples[start : start + batch_size]
        scores.append(model.predict_proba(build_batch(chunk)))
    return np.concatenate(scores)
