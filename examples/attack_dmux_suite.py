"""Attack a benchmark suite with MuxLink — a miniature of paper Fig. 7.

Locks two ISCAS-85 stand-ins with both learning-resilient schemes and
several key sizes, attacks each cell through the pooled, cache-aware
:class:`~repro.experiments.ExperimentRunner`, and prints the AC/PC/KPA
grid::

    python examples/attack_dmux_suite.py

Parallelism and reuse
---------------------

The grid cells are independent, so the runner fans them out over worker
processes when asked — results are **bit-identical** for any job count,
because each cell derives its RNG streams from its identity rather than
from grid order::

    REPRO_JOBS=4 python examples/attack_dmux_suite.py   # 4-worker pool

The same engine backs the figure drivers; regenerate the paper's whole
Fig. 7-10 set with one shared artifact cache (Fig. 8's Hamming runs and
Fig. 9's threshold sweep reuse Fig. 7's locked netlists and trained
attacks instead of re-locking and re-training)::

    repro figures --jobs 4                  # all four figures, pooled
    repro figures --figures 7 9 --scale smoke --jobs auto
"""

from repro.core.metrics import aggregate_metrics
from repro.experiments import ExperimentRunner, ExperimentScale, fig7_cells

SUITE = ExperimentScale(
    name="example",
    iscas=("c1355", "c1908"),
    itc=(),
    circuit_scale_iscas=0.15,
    circuit_scale_itc=1.0,
    iscas_keys=(8, 16),
    itc_keys=(),
    h=3,
    epochs=15,
    learning_rate=1e-3,
)


def main() -> None:
    cells = fig7_cells(SUITE, seed=1)
    with ExperimentRunner() as runner:  # REPRO_JOBS picks the pool size
        records = runner.run(cells)
        print(f"{'benchmark':<10}{'scheme':<15}{'K':>4}{'AC':>8}{'PC':>8}{'KPA':>8}")
        for r in records:
            m = r.metrics
            print(
                f"{r.benchmark:<10}{r.scheme:<15}{r.key_size:>4}"
                f"{m.accuracy:>8.3f}{m.precision:>8.3f}{m.kpa:>8.3f}"
            )
        pooled = aggregate_metrics([r.metrics for r in records])
        print(
            f"\npooled: AC={pooled.accuracy:.1%} PC={pooled.precision:.1%} "
            f"KPA={pooled.kpa:.1%} (random guessing would give ~50%)"
        )
        print(f"runner: {runner.stats.summary()}")


if __name__ == "__main__":
    main()
