"""FaultPlan/FaultSite: validation, round-trip, fire budgets, env arming."""

import pytest

from repro import faults
from repro.faults import (
    FAULT_PLAN_ENV,
    FAULT_SITES,
    FaultError,
    FaultPlan,
    FaultSite,
    NAMED_PLANS,
    named_fault_plan,
)
from repro.faults import plan as plan_module


def test_unknown_site_is_rejected():
    with pytest.raises(FaultError, match="unknown fault site"):
        FaultSite("store.write_tron")


def test_site_spec_validation():
    with pytest.raises(FaultError):
        FaultSite("spool.lease_race", after=-1)
    with pytest.raises(FaultError):
        FaultSite("spool.lease_race", p=1.5)


def test_duplicate_site_is_rejected():
    with pytest.raises(FaultError, match="twice"):
        FaultPlan(
            "dup",
            sites=(
                FaultSite("spool.lease_race"),
                FaultSite("spool.lease_race", times=2),
            ),
        )


def test_json_round_trip():
    plan = FaultPlan(
        "mix",
        sites=(
            FaultSite("worker.crash_after_n", times=2, after=1),
            FaultSite("worker.slow_factor", p=0.5, param=3.0),
        ),
        seed=7,
    )
    assert FaultPlan.loads(plan.dumps()) == plan


def test_malformed_json_raises_fault_error():
    with pytest.raises(FaultError, match="malformed"):
        FaultPlan.loads("{not json")
    with pytest.raises(FaultError):
        FaultPlan.loads('{"name": "x", "sites": [{"site": "nope"}]}')


def test_every_named_plan_builds_and_round_trips():
    for name in NAMED_PLANS:
        plan = named_fault_plan(name, seed=3)
        assert plan.name == name
        assert plan.sites, name
        assert FaultPlan.loads(plan.dumps()) == plan
        for spec in plan.sites:
            assert spec.site in FAULT_SITES
    with pytest.raises(FaultError):
        named_fault_plan("does-not-exist")


def test_fire_returns_none_without_a_plan():
    faults.deactivate()
    assert faults.fire("spool.lease_race") is None
    assert faults.fired_counts() == {}
    assert faults.active_plan() is None


def test_fire_budget_and_after(capsys):
    plan = FaultPlan(
        "budget",
        sites=(FaultSite("spool.lease_race", times=2, after=1),),
    )
    faults.activate(plan)
    try:
        assert faults.fire("spool.lease_race") is None  # skipped: after=1
        assert faults.fire("spool.lease_race") is not None
        assert faults.fire("spool.lease_race") is not None
        assert faults.fire("spool.lease_race") is None  # budget spent
        assert faults.fire("store.write_torn") is None  # not armed
        assert faults.fired_counts() == {"spool.lease_race": 2}
    finally:
        faults.deactivate()
    err = capsys.readouterr().err
    assert err.count("fault[spool.lease_race]: fired") == 2


def test_unlimited_budget():
    faults.activate(
        FaultPlan("forever", sites=(FaultSite("spool.lease_race", times=-1),))
    )
    try:
        for _ in range(10):
            assert faults.fire("spool.lease_race") is not None
    finally:
        faults.deactivate()


def test_probabilistic_fire_pattern_is_reproducible():
    plan = FaultPlan(
        "coin", sites=(FaultSite("spool.lease_race", times=-1, p=0.5),), seed=5
    )

    def pattern():
        faults.activate(plan)
        try:
            return [
                faults.fire("spool.lease_race") is not None for _ in range(64)
            ]
        finally:
            faults.deactivate()

    first = pattern()
    assert pattern() == first  # same plan, same seed, same draws
    assert any(first) and not all(first)  # the coin actually flips
    other = FaultPlan(
        "coin", sites=(FaultSite("spool.lease_race", times=-1, p=0.5),), seed=6
    )
    faults.activate(other)
    try:
        reseeded = [
            faults.fire("spool.lease_race") is not None for _ in range(64)
        ]
    finally:
        faults.deactivate()
    assert reseeded != first


def test_env_var_arms_the_plan_lazily(monkeypatch):
    plan = FaultPlan("env", sites=(FaultSite("spool.lease_race"),))
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.dumps())
    # Simulate a fresh worker process: the env has not been consulted yet.
    monkeypatch.setattr(plan_module, "_env_checked", False)
    monkeypatch.setattr(plan_module, "_active", None)
    try:
        assert faults.fire("spool.lease_race") is not None
        assert faults.active_plan() == plan
    finally:
        faults.deactivate()


def test_deactivate_beats_the_env_var(monkeypatch):
    plan = FaultPlan("env", sites=(FaultSite("spool.lease_race"),))
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.dumps())
    faults.deactivate()  # an explicit disarm must stick
    assert faults.fire("spool.lease_race") is None


def test_site_seed_sequences_differ_by_site():
    plan = FaultPlan("seeds", seed=0)
    a = plan.site_seed_sequence("spool.lease_race").generate_state(4)
    b = plan.site_seed_sequence("socket.frame_eof").generate_state(4)
    assert list(a) != list(b)
    again = plan.site_seed_sequence("spool.lease_race").generate_state(4)
    assert list(a) == list(again)
