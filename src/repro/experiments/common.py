"""Shared experiment infrastructure: scales, runners, result records.

Three parameter presets exist for every experiment:

* ``SMOKE`` — one tiny benchmark, one key size, two epochs.  Seconds of
  runtime; the preset the test suite drives every figure through.
* ``CI`` — shrunk circuits / keys / epochs so the whole figure regenerates
  in minutes on a laptop.  This is what ``benchmarks/`` runs.
* ``PAPER`` — the full-size setting of the paper (all 13 benchmarks,
  K up to 512, 100 epochs).  Same code path, hours of runtime.

Set the environment variable ``REPRO_EXPERIMENT_SCALE=paper`` (or
``smoke``) to switch the benches to another preset.

Figure grids execute through the pooled, cache-aware engine in
:mod:`repro.experiments.runner`: ``REPRO_JOBS=N`` (or ``repro figures
--jobs N``) fans independent attack cells out over N worker processes,
while locked netlists and trained attacks are cached and reused across
cells and figures.  The default (``REPRO_JOBS=0``) stays serial, and
serial, pooled and reordered runs produce bit-identical
:class:`AttackRecord` payloads because every cell derives its RNG
streams from :func:`repro.experiments.runner.cell_seed_sequence`, keyed
on the cell identity rather than grid order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core import MuxLinkConfig
from repro.core.metrics import KeyMetrics
from repro.linkpred import TrainConfig
from repro.locking import (
    DMUX_SCHEME,
    SYMMETRIC_SCHEME,
    LockedCircuit,
    lock_dmux,
    lock_symmetric,
)
from repro.netlist import Circuit

__all__ = [
    "ExperimentScale",
    "SMOKE_SCALE",
    "CI_SCALE",
    "PAPER_SCALE",
    "SCALES",
    "active_scale",
    "scale_by_name",
    "AttackRecord",
    "lock_with",
    "attack_benchmark",
    "format_records",
    "resolve_worker_count",
]

#: What ``auto`` resolves to for the per-attack execution knobs.
#:
#: Measured policy, not a guess (24-core host; ``BENCH_training.json``
#: sections ``bench_extract_score`` and ``bench_train_workers``):
#: subgraph-extraction worker pools never reach break-even — 0.24x at
#: smoke scale rising only to 0.93x on the full-size 30k-link ITC
#: pipeline — and pooled gradient shards run ~4x slower per epoch than
#: serial (342ms → 1490ms with 2 workers), because per-step payload
#: shipping dominates at this model size.  ``auto`` therefore picks the
#: in-process fast path for both knobs *regardless of core count*: the
#: break-even floor sits beyond every measured configuration.  Cores pay
#: off one level up, at the job grid — ``repro figures --jobs auto``
#: fans whole attack cells out, and the spool/socket bus fans them
#: across processes or hosts.
AUTO_WORKER_COUNTS = {"workers": 0, "train_workers": 1}


def resolve_worker_count(value: int | str, kind: str = "workers") -> int:
    """Resolve an ``auto``-capable worker-count knob to a concrete int.

    *kind* is ``"workers"`` (subgraph extraction) or ``"train_workers"``
    (gradient-shard executors).  Integers and numeric strings pass
    through; ``"auto"`` applies the measured policy above.
    """
    if kind not in AUTO_WORKER_COUNTS:
        raise KeyError(
            f"unknown worker knob {kind!r}; choose from "
            f"{sorted(AUTO_WORKER_COUNTS)}"
        )
    if isinstance(value, str):
        text = value.strip().lower()
        if text == "auto":
            return AUTO_WORKER_COUNTS[kind]
        value = int(text)
    return int(value)


@dataclass(frozen=True)
class ExperimentScale:
    """One evaluation preset.

    Attributes:
        name: preset label (shows up in reports).
        iscas: ISCAS-85 benchmark names to include.
        itc: ITC-99 benchmark names to include.
        circuit_scale_iscas / circuit_scale_itc: stand-in size factors.
        iscas_keys / itc_keys: key sizes per family (paper: {64, 128, 256}
            and {256, 512}).
        h: enclosing-subgraph hops.
        threshold: post-processing ``th``.
        epochs / learning_rate: GNN training budget.
        patience: early-stopping patience on validation loss forwarded to
            :class:`repro.linkpred.TrainConfig` (``None`` = train the full
            epoch budget, the paper's behaviour).
        hd_patterns: random patterns for Hamming-distance runs.
        n_workers: subgraph-extraction worker processes passed to
            :class:`MuxLinkConfig` (overridable via ``REPRO_WORKERS``;
            ``"auto"`` applies the measured policy in
            :data:`AUTO_WORKER_COUNTS`).
        score_prefetch: in-flight batch budget of the streamed
            extract→score pipeline passed to :class:`MuxLinkConfig`
            (overridable via ``REPRO_SCORE_PREFETCH``; ``0`` = serial).
        optimizer: training optimizer — ``"adam"`` or ``"kfac"``
            (K-FAC-preconditioned Adam); a *semantic* knob, part of the
            artifact identity.
        grad_shards: gradient shards per optimizer step (semantic, like
            ``optimizer`` — it fixes the reduction order of the loss
            curve and is folded into the config token).
        n_train_workers: processes executing those shards
            (overridable via ``REPRO_TRAIN_WORKERS``; pure execution
            knob, normalized out of the config token — results are
            bit-identical for any worker count; ``"auto"`` applies the
            measured policy in :data:`AUTO_WORKER_COUNTS`).
    """

    name: str
    iscas: tuple[str, ...]
    itc: tuple[str, ...]
    circuit_scale_iscas: float
    circuit_scale_itc: float
    iscas_keys: tuple[int, ...]
    itc_keys: tuple[int, ...]
    h: int = 3
    threshold: float = 0.01
    epochs: int = 15
    learning_rate: float = 1e-3
    patience: int | None = None
    hd_patterns: int = 10_000
    n_workers: int | str = 0
    score_prefetch: int = 2
    optimizer: str = "adam"
    grad_shards: int = 1
    n_train_workers: int | str = 1

    def benchmarks(self) -> tuple[tuple[str, float, tuple[int, ...]], ...]:
        """``(name, scale, key_sizes)`` for every included benchmark."""
        rows = [
            (name, self.circuit_scale_iscas, self.iscas_keys)
            for name in self.iscas
        ]
        rows += [
            (name, self.circuit_scale_itc, self.itc_keys) for name in self.itc
        ]
        return tuple(rows)

    def attack_config(self, seed: int = 0) -> MuxLinkConfig:
        workers = resolve_worker_count(
            os.environ.get("REPRO_WORKERS", self.n_workers), "workers"
        )
        prefetch = int(
            os.environ.get("REPRO_SCORE_PREFETCH", self.score_prefetch)
        )
        train_workers = resolve_worker_count(
            os.environ.get("REPRO_TRAIN_WORKERS", self.n_train_workers),
            "train_workers",
        )
        return MuxLinkConfig(
            h=self.h,
            threshold=self.threshold,
            train=TrainConfig(
                epochs=self.epochs,
                learning_rate=self.learning_rate,
                patience=self.patience,
                seed=seed,
                optimizer=self.optimizer,
                grad_shards=self.grad_shards,
                n_train_workers=train_workers,
            ),
            seed=seed,
            n_workers=workers,
            score_prefetch=prefetch,
        )


SMOKE_SCALE = ExperimentScale(
    name="smoke",
    iscas=("c1355",),
    itc=(),
    circuit_scale_iscas=0.1,
    circuit_scale_itc=0.1,
    iscas_keys=(6,),
    itc_keys=(),
    h=1,
    epochs=2,
    hd_patterns=256,
)

CI_SCALE = ExperimentScale(
    name="ci",
    iscas=("c1355", "c1908", "c2670"),
    itc=("b14", "b15"),
    circuit_scale_iscas=0.15,
    circuit_scale_itc=0.018,
    iscas_keys=(8, 16),
    itc_keys=(16,),
    h=3,
    epochs=15,
    hd_patterns=4096,
)

PAPER_SCALE = ExperimentScale(
    name="paper",
    iscas=("c1355", "c1908", "c2670", "c3540", "c5315", "c6288", "c7552"),
    itc=("b14", "b15", "b20", "b21", "b22", "b17"),
    circuit_scale_iscas=1.0,
    circuit_scale_itc=1.0,
    iscas_keys=(64, 128, 256),
    itc_keys=(256, 512),
    h=3,
    epochs=100,
    learning_rate=1e-4,
    hd_patterns=100_000,
)


SCALES = {
    SMOKE_SCALE.name: SMOKE_SCALE,
    CI_SCALE.name: CI_SCALE,
    PAPER_SCALE.name: PAPER_SCALE,
}


def scale_by_name(name: str) -> ExperimentScale:
    """Look a preset up by name (``smoke`` / ``ci`` / ``paper``)."""
    try:
        return SCALES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(SCALES)}")


def active_scale() -> ExperimentScale:
    """Preset selected via ``REPRO_EXPERIMENT_SCALE`` (default: CI)."""
    name = os.environ.get("REPRO_EXPERIMENT_SCALE", "ci").lower()
    return SCALES.get(name, CI_SCALE)


_LOCKERS = {
    DMUX_SCHEME: lock_dmux,
    SYMMETRIC_SCHEME: lock_symmetric,
}


def lock_with(
    scheme: str, circuit: Circuit, key_size: int, seed: int = 0
) -> LockedCircuit:
    """Lock *circuit* with the named scheme (``D-MUX`` / ``Symmetric-MUX``)."""
    try:
        locker = _LOCKERS[scheme]
    except KeyError:
        raise KeyError(f"unknown scheme {scheme!r}; choose from {sorted(_LOCKERS)}")
    return locker(circuit, key_size=key_size, seed=seed)


@dataclass
class AttackRecord:
    """One (benchmark, scheme, key size) attack outcome."""

    benchmark: str
    scheme: str
    key_size: int
    metrics: KeyMetrics
    runtime_seconds: float
    predicted_key: str = ""
    extras: dict = field(default_factory=dict)


def attack_benchmark(
    name: str,
    scheme: str,
    key_size: int,
    scale: ExperimentScale,
    circuit_scale: float,
    seed: int = 0,
    runner=None,
    store=None,
) -> AttackRecord:
    """Lock one benchmark and run MuxLink on it.

    *seed* is the base experiment seed; the cell's actual lock / train
    streams are derived from it via
    :func:`repro.experiments.runner.cell_seed_sequence`, keyed on
    ``(benchmark, scheme, key_size)`` so every cell of a grid gets an
    independent stream regardless of iteration order.  Passing a shared
    :class:`~repro.experiments.runner.ExperimentRunner` reuses its
    artifact caches (and worker pool) across calls; *store* (an
    :class:`~repro.store.ArtifactStore` or a path) makes a one-shot call
    read/write the persistent artifact pool instead — ignored when
    *runner* is given (the runner owns its store).
    """
    from repro.experiments.runner import ExperimentRunner, make_cell

    if runner is None:
        runner = ExperimentRunner(jobs=0, store=store)
    cell = make_cell(scale, name, circuit_scale, scheme, key_size, seed)
    return runner.run([cell])[0]


def format_records(records: list[AttackRecord], title: str) -> str:
    """Render records as the paper-style AC/PC/KPA table."""
    lines = [title, f"{'benchmark':<10}{'scheme':<15}{'K':>5}{'AC':>8}{'PC':>8}{'KPA':>8}{'X':>5}{'sec':>8}"]
    for r in records:
        m = r.metrics
        kpa = f"{m.kpa:.3f}" if m.kpa == m.kpa else "  nan"
        lines.append(
            f"{r.benchmark:<10}{r.scheme:<15}{r.key_size:>5}"
            f"{m.accuracy:>8.3f}{m.precision:>8.3f}{kpa:>8}"
            f"{m.n_x:>5}{r.runtime_seconds:>8.1f}"
        )
    return "\n".join(lines)
