"""Gradient checks (float64 via conftest) and behaviour tests for the new
segment/gather primitives, the fused graph convolution, and the runtime
plumbing (dtype policy, no_grad, Workspace) added with the training engine."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import (
    Tensor,
    Workspace,
    default_dtype,
    dtype_scope,
    gather_rows,
    graph_conv,
    is_grad_enabled,
    no_grad,
    segment_max,
    segment_mean,
    segment_sum,
    set_default_dtype,
    spmm,
)
from tests.nn.test_tensor import check, numerical_grad

RNG = np.random.default_rng(11)


# ------------------------------------------------------------- segment ops
def test_segment_sum_forward_and_grad():
    x = RNG.normal(size=(6, 3))
    ids = np.array([0, 0, 2, 1, 2, 2])
    out = segment_sum(Tensor(x), ids, 3)
    np.testing.assert_allclose(out.data[0], x[0] + x[1])
    np.testing.assert_allclose(out.data[1], x[3])
    np.testing.assert_allclose(out.data[2], x[2] + x[4] + x[5])
    check(lambda t: segment_sum(t, ids, 3).sum(), x)


def test_segment_sum_empty_segment_is_zero():
    out = segment_sum(Tensor(np.ones((2, 2))), np.array([0, 2]), 4)
    np.testing.assert_array_equal(out.data[1], 0.0)
    np.testing.assert_array_equal(out.data[3], 0.0)


def test_segment_mean_forward_and_grad():
    x = RNG.normal(size=(5, 2))
    ids = np.array([1, 1, 0, 1, 0])
    out = segment_mean(Tensor(x), ids, 2)
    np.testing.assert_allclose(out.data[0], (x[2] + x[4]) / 2)
    np.testing.assert_allclose(out.data[1], (x[0] + x[1] + x[3]) / 3)
    check(lambda t: segment_mean(t, ids, 2).sum(), x)


def test_segment_mean_empty_segment_is_zero():
    out = segment_mean(Tensor(np.ones((1, 2))), np.array([0]), 2)
    np.testing.assert_array_equal(out.data[1], 0.0)


def test_segment_max_forward_and_grad():
    # Distinct values: no max ties, so the subgradient is unambiguous.
    x = RNG.permutation(20).astype(float).reshape(5, 4)
    ids = np.array([0, 1, 1, 0, 1])
    out = segment_max(Tensor(x), ids, 2)
    np.testing.assert_allclose(out.data[0], np.maximum(x[0], x[3]))
    check(lambda t: segment_max(t, ids, 2).sum(), x)


def test_segment_max_empty_segment_is_zero():
    out = segment_max(Tensor(np.ones((1, 3))), np.array([1]), 3)
    np.testing.assert_array_equal(out.data[0], 0.0)
    np.testing.assert_array_equal(out.data[2], 0.0)


def test_segment_ops_validate_arguments():
    t = Tensor(np.ones((3, 2)))
    with pytest.raises(ValueError):
        segment_sum(t, np.array([0, 1]), 2)  # wrong id count
    with pytest.raises(ValueError):
        segment_sum(t, np.array([0, 1, 5]), 2)  # id out of range
    with pytest.raises(ValueError):
        segment_sum(t, np.array([0, -1, 1]), 2)  # negative id


def test_gather_rows_function_matches_method():
    x = RNG.normal(size=(4, 3))
    idx = np.array([2, -1, 0, 2])
    a = gather_rows(Tensor(x), idx)
    b = Tensor(x).gather_rows(idx)
    np.testing.assert_array_equal(a.data, b.data)


def test_gather_rows_unique_fast_path_gradient():
    x = RNG.normal(size=(5, 2))
    idx = np.array([3, -1, 0, 4])  # unique valid indices

    t = Tensor(x, requires_grad=True)
    t.gather_rows(idx, unique=True).sum().backward()
    expected = np.zeros_like(x)
    expected[[3, 0, 4]] = 1.0
    np.testing.assert_array_equal(t.grad, expected)


# ------------------------------------------------------- fused graph conv
def test_graph_conv_matches_unfused_composition():
    adj = sp.random(7, 7, density=0.4, random_state=3, format="csr")
    h = RNG.normal(size=(7, 4))
    w = RNG.normal(size=(4, 5))
    fused = graph_conv(adj, Tensor(h), Tensor(w))
    unfused = spmm(adj, Tensor(h) @ Tensor(w)).tanh()
    np.testing.assert_array_equal(fused.data, unfused.data)


def test_graph_conv_gradients():
    adj = sp.random(6, 6, density=0.5, random_state=4, format="csr")
    h = RNG.normal(size=(6, 3))
    w = RNG.normal(size=(3, 2))
    check(lambda hh, ww: graph_conv(adj, hh, ww).sum(), h, w)


# --------------------------------------------------------- runtime plumbing
def test_dtype_policy_roundtrip():
    # The conftest fixture has switched us to float64.
    assert default_dtype() == np.float64
    with dtype_scope(np.float32):
        assert default_dtype() == np.float32
        assert Tensor(np.ones(3)).data.dtype == np.float32
    assert default_dtype() == np.float64
    with pytest.raises(ValueError):
        set_default_dtype(np.int32)


def test_no_grad_disables_tape():
    t = Tensor(np.ones(3), requires_grad=True)
    assert is_grad_enabled()
    with no_grad():
        assert not is_grad_enabled()
        out = (t * 2.0).sum()
        assert not out.requires_grad
        assert out._backward is None
    out = (t * 2.0).sum()
    assert out.requires_grad


def test_workspace_recycles_buffers():
    ws = Workspace()
    a = ws.acquire((3, 4), np.float64)
    ws.release(a)
    b = ws.acquire((3, 4), np.float64)
    assert b is a
    c = ws.acquire((3, 4), np.float64)  # pool empty again -> fresh array
    assert c is not a
    assert ws.acquire((2, 2), np.float64).shape == (2, 2)


def test_max_pool1d_gradient_handles_fortran_ordered_input():
    """The non-overlapping scatter must not assume C-ordered inputs."""
    from repro.nn import max_pool1d

    x = np.asfortranarray(RNG.normal(size=(2, 3, 6)))
    t = Tensor(x, requires_grad=True)
    t.data = np.asfortranarray(t.data)  # Tensor() normalizes; force F order
    out = max_pool1d(t, 2, 2)
    out.sum().backward()
    assert t.grad.sum() == pytest.approx(out.data.size)
    # One unit of gradient per window, landing on that window's argmax.
    xc = np.ascontiguousarray(x)
    num = numerical_grad(
        lambda: float(max_pool1d(Tensor(xc), 2, 2).sum().item()), xc
    )
    np.testing.assert_allclose(t.grad, num, rtol=1e-6, atol=1e-8)


def test_conv_workspace_reuse_keeps_gradients_exact():
    """Reusing the im2col buffer across steps must not corrupt gradients."""
    from repro.nn import Conv1d

    layer = Conv1d(2, 3, kernel_size=3, rng=np.random.default_rng(0))
    x = RNG.normal(size=(2, 2, 8))

    def run():
        t = Tensor(x, requires_grad=True)
        out = layer(t).sum()
        layer.zero_grad()
        out.backward()
        return t.grad.copy(), layer.weight.grad.copy()

    gx1, gw1 = run()
    gx2, gw2 = run()  # second pass reuses the released buffer
    np.testing.assert_array_equal(gx1, gx2)
    np.testing.assert_array_equal(gw1, gw2)
    num = numerical_grad(
        lambda: float(layer(Tensor(x)).sum().item()), x
    )
    np.testing.assert_allclose(gx1, num, rtol=1e-5, atol=1e-7)
