"""Machine-readable perf records for the bench suite.

Every bench appends its section to one JSON document —
``BENCH_training.json`` by default, overridable via the
``REPRO_BENCH_RECORD`` environment variable — which CI uploads as a build
artifact and which a snapshot of lives at the repo root, seeding the
cross-PR performance trajectory.  Sections are merged read-modify-write
so several benches (bench_training, bench_spmm, bench_kfac) can
contribute to one record within a CI job.

Schema 2: a section is no longer overwritten per run.  Each holds::

    {"latest": {...},                  # the newest measurement
     "trajectory": [{...}, {...}]}     # appended run history, oldest first

so the record accumulates a per-section perf trajectory across runs (and
across PRs, when the committed snapshot is refreshed).  Schema-1 records
— a bare payload per section — are migrated on first touch: the old
payload becomes the first trajectory entry.
"""

from __future__ import annotations

import json
import os
import platform
import time

RECORD_SCHEMA = 2

#: Trajectory entries kept per section; the oldest fall off so the
#: committed snapshot stays reviewable.
TRAJECTORY_LIMIT = 50


def record_path() -> str:
    return os.environ.get("REPRO_BENCH_RECORD", "BENCH_training.json")


def _load(path: str) -> dict:
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            pass
    return {}


def _as_section(value) -> dict:
    """Normalize a section to schema-2 shape, migrating schema-1 bodies."""
    if isinstance(value, dict) and set(value) <= {"latest", "trajectory"}:
        trajectory = value.get("trajectory", [])
        return {"trajectory": list(trajectory) if trajectory else []}
    if isinstance(value, dict) and value:
        return {"trajectory": [value]}  # schema-1 payload becomes history
    return {"trajectory": []}


def update_record(section: str, payload: dict) -> str:
    """Append *payload* under *section* in the shared perf record.

    The payload becomes the section's ``latest`` and is appended to its
    ``trajectory`` (stamped with the run time).  Returns the record path.
    Timestamps and host fingerprints are attached at the top level so
    downstream tooling can normalize runs.
    """
    path = record_path()
    record = _load(path)
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    record["schema"] = RECORD_SCHEMA
    record["generated_at"] = stamp
    record.setdefault("host", {})
    record["host"].update(
        {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "ci": bool(os.environ.get("CI")),
        }
    )
    entry = dict(payload)
    entry["recorded_at"] = stamp
    body = _as_section(record.get(section))
    body["latest"] = entry
    body["trajectory"].append(entry)
    del body["trajectory"][:-TRAJECTORY_LIMIT]
    record[section] = body
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path
