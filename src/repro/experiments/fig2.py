"""Fig. 2 — SWEEP and SCOPE are blind on D-MUX / symmetric locking.

The paper locks each ISCAS-85 benchmark 100× with K = 64 and shows both
constant-propagation attacks stuck at KPA ≈ 50 %.  This runner performs the
same protocol at a configurable number of copies; the claim reproduced is
the *flat ≈ 0.5 KPA line* across benchmarks and schemes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks import SweepAttack, scope_attack
from repro.benchgen import load_benchmark
from repro.core.metrics import KeyMetrics, aggregate_metrics, score_key
from repro.experiments.common import ExperimentScale, active_scale, lock_with
from repro.locking import DMUX_SCHEME, SYMMETRIC_SCHEME

__all__ = ["Fig2Row", "run_fig2", "format_fig2"]


@dataclass(frozen=True)
class Fig2Row:
    """Pooled attack scores for one (benchmark, scheme, attack) cell."""

    benchmark: str
    scheme: str
    attack: str
    metrics: KeyMetrics


def run_fig2(
    scale: ExperimentScale | None = None,
    n_copies: int = 4,
    key_size: int | None = None,
    seed: int = 0,
) -> list[Fig2Row]:
    """Regenerate the Fig. 2 resilience study.

    Args:
        scale: experiment preset (CI default).
        n_copies: locked copies per benchmark (paper: 100; CI: 4).
        key_size: key bits per copy (paper: 64; default: smallest preset key).
        seed: base RNG seed.
    """
    scale = scale or active_scale()
    key_size = key_size or min(scale.iscas_keys)
    rows: list[Fig2Row] = []
    for scheme in (DMUX_SCHEME, SYMMETRIC_SCHEME):
        for name in scale.iscas:
            base = load_benchmark(name, scale=scale.circuit_scale_iscas)
            copies = [
                lock_with(scheme, base, key_size=key_size, seed=seed + i)
                for i in range(n_copies)
            ]
            # SCOPE: training-free, run per copy and pool.
            scope_scores = [
                score_key(
                    scope_attack(c.circuit, undecided="coin", seed=seed + i).predicted_key,
                    c.key,
                )
                for i, c in enumerate(copies)
            ]
            rows.append(
                Fig2Row(name, scheme, "SCOPE", aggregate_metrics(scope_scores))
            )
            # SWEEP: leave-one-out — train on all copies but the target.
            sweep_scores = []
            for i, target in enumerate(copies):
                train = [c for j, c in enumerate(copies) if j != i]
                attack = SweepAttack(
                    margin=1e-3, undecided="coin", seed=seed + i
                ).fit(train)
                sweep_scores.append(
                    score_key(attack.attack(target.circuit).predicted_key, target.key)
                )
            rows.append(
                Fig2Row(name, scheme, "SWEEP", aggregate_metrics(sweep_scores))
            )
    return rows


def format_fig2(rows: list[Fig2Row]) -> str:
    lines = [
        "Fig. 2 — constant-propagation attacks on learning-resilient locking",
        f"{'benchmark':<10}{'scheme':<15}{'attack':<8}{'AC':>8}{'PC':>8}{'KPA':>8}",
    ]
    for r in rows:
        m = r.metrics
        lines.append(
            f"{r.benchmark:<10}{r.scheme:<15}{r.attack:<8}"
            f"{m.accuracy:>8.3f}{m.precision:>8.3f}{m.kpa:>8.3f}"
        )
    return "\n".join(lines)
