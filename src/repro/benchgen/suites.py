"""Benchmark suites used throughout the evaluation.

The paper evaluates on seven ISCAS-85 circuits (c1355 … c7552) and six
combinational ITC-99 circuits (b14 … b17).  The original netlists are not
available offline, so :func:`load_benchmark` synthesizes deterministic
stand-ins whose primary-input / primary-output / gate counts match the
published sizes.  The true ISCAS-85 **c17** netlist is tiny and included
verbatim as a ground-truth anchor.

``scale`` shrinks every stand-in proportionally so that CI-sized experiment
runs finish in minutes; the full-size circuits are what ``scale=1.0`` yields.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist import Circuit, parse_bench
from repro.benchgen.generators import random_netlist

__all__ = [
    "BenchmarkSpec",
    "ISCAS85_SUITE",
    "ITC99_SUITE",
    "benchmark_names",
    "benchmark_spec",
    "load_benchmark",
    "load_c17",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Published size of a benchmark circuit (combinational view)."""

    name: str
    family: str  # "ISCAS-85" | "ITC-99"
    n_inputs: int
    n_outputs: int
    n_gates: int
    seed: int  # generator seed for the stand-in


#: ISCAS-85 sizes as distributed (gate counts from the original release).
ISCAS85_SUITE: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("c1355", "ISCAS-85", 41, 32, 546, seed=1355),
    BenchmarkSpec("c1908", "ISCAS-85", 33, 25, 880, seed=1908),
    BenchmarkSpec("c2670", "ISCAS-85", 233, 140, 1193, seed=2670),
    BenchmarkSpec("c3540", "ISCAS-85", 50, 22, 1669, seed=3540),
    BenchmarkSpec("c5315", "ISCAS-85", 178, 123, 2307, seed=5315),
    BenchmarkSpec("c6288", "ISCAS-85", 32, 32, 2416, seed=6288),
    BenchmarkSpec("c7552", "ISCAS-85", 207, 108, 3512, seed=7552),
)

#: Combinational counterparts of the ITC-99 circuits used by the paper.
ITC99_SUITE: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("b14", "ITC-99", 277, 299, 9767, seed=9914),
    BenchmarkSpec("b15", "ITC-99", 485, 519, 8367, seed=9915),
    BenchmarkSpec("b20", "ITC-99", 522, 512, 19682, seed=9920),
    BenchmarkSpec("b21", "ITC-99", 522, 512, 20027, seed=9921),
    BenchmarkSpec("b22", "ITC-99", 767, 757, 29162, seed=9922),
    BenchmarkSpec("b17", "ITC-99", 1452, 1512, 30777, seed=9917),
)

_ALL: dict[str, BenchmarkSpec] = {
    spec.name: spec for spec in ISCAS85_SUITE + ITC99_SUITE
}

_C17_TEXT = """
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def benchmark_names(family: str | None = None) -> tuple[str, ...]:
    """Names of all suite benchmarks, optionally filtered by family."""
    specs = ISCAS85_SUITE + ITC99_SUITE
    if family is not None:
        specs = tuple(s for s in specs if s.family == family)
    return tuple(s.name for s in specs)


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Return the published size spec for *name*."""
    try:
        return _ALL[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(_ALL)}"
        ) from None


def load_benchmark(name: str, scale: float = 1.0) -> Circuit:
    """Synthesize the deterministic stand-in for benchmark *name*.

    Args:
        name: a suite benchmark (``c1355`` … ``b17``) or ``c17`` (the real
            netlist, never scaled).
        scale: proportional size factor in ``(0, 1]``; gate, input and output
            counts are multiplied by it (floored, with sane minimums).
    """
    if name == "c17":
        return load_c17()
    spec = benchmark_spec(name)
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    n_inputs = max(4, int(spec.n_inputs * scale))
    n_outputs = max(2, int(spec.n_outputs * scale))
    n_gates = max(16, int(spec.n_gates * scale))
    return random_netlist(
        name, n_inputs=n_inputs, n_outputs=n_outputs, n_gates=n_gates, seed=spec.seed
    )


def load_c17() -> Circuit:
    """The genuine ISCAS-85 c17 netlist (6 NAND gates)."""
    circuit, _ = parse_bench(_C17_TEXT, name="c17")
    return circuit
