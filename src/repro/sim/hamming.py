"""Output Hamming distance between two circuits (paper Fig. 8 metric).

The attacker's goal is HD → 0 % (functionally recovered design); the
defender's is 50 % (maximum corruption).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.netlist import Circuit
from repro.sim.simulator import random_patterns, simulate_outputs

__all__ = ["hamming_distance", "probably_equivalent"]

_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)


def _popcount(words: np.ndarray) -> int:
    return int(_POPCOUNT_TABLE[words.view(np.uint8)].sum())


def hamming_distance(
    reference: Circuit,
    candidate: Circuit,
    n_patterns: int = 100_000,
    seed: int = 0,
) -> float:
    """Average output Hamming distance over random input patterns.

    Both circuits must expose identical primary input and output name sets
    (order may differ).  Follows the paper: HD is the fraction of differing
    output bits over ``n_patterns`` uniform random patterns.

    Returns:
        HD in ``[0, 1]``.
    """
    if set(reference.inputs) != set(candidate.inputs):
        raise SimulationError("primary input sets differ")
    if set(reference.outputs) != set(candidate.outputs):
        raise SimulationError("primary output sets differ")

    words, n = random_patterns(len(reference.inputs), n_patterns, seed=seed)
    stimulus = {pi: words[i] for i, pi in enumerate(reference.inputs)}

    ref_out = simulate_outputs(reference, stimulus)
    # Stimulus is keyed by name, so candidate input order is irrelevant.
    cand_raw = simulate_outputs(candidate, stimulus)
    order = [candidate.outputs.index(po) for po in reference.outputs]
    cand_out = cand_raw[order]

    diff = ref_out ^ cand_out
    # Mask filler bits in the last word.
    tail_bits = n % 64
    if tail_bits:
        mask = np.uint64((1 << tail_bits) - 1)
        diff[:, -1] &= mask
    total_bits = n * len(reference.outputs)
    return _popcount(diff) / total_bits


def probably_equivalent(
    reference: Circuit,
    candidate: Circuit,
    n_patterns: int = 4096,
    seed: int = 0,
) -> bool:
    """Monte-Carlo equivalence check: HD == 0 over *n_patterns* patterns."""
    return hamming_distance(reference, candidate, n_patterns, seed) == 0.0
