"""Layer / module abstractions over the autograd tensors.

Parameters are created in the runtime default dtype (float32 unless
``REPRO_DTYPE``/:func:`repro.nn.set_default_dtype` says otherwise);
``load_state_dict`` casts incoming arrays to each parameter's dtype so
checkpoints round-trip across dtype modes.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import conv1d, dropout, graph_conv, linear
from repro.nn.tensor import Tensor, Workspace

__all__ = ["Module", "Linear", "Conv1d", "Dropout", "GraphConv"]


class Module:
    """Base class: parameter discovery and train/eval mode switching."""

    def parameters(self) -> list[Tensor]:
        """All trainable tensors of this module and its sub-modules."""
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> None:
        self._set_mode(True)

    def eval(self) -> None:
        self._set_mode(False)

    def _set_mode(self, training: bool) -> None:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)
        if hasattr(self, "training"):
            self.training = training

    def state_dict(self) -> list[np.ndarray]:
        """Flat list of parameter arrays (load with :meth:`load_state_dict`)."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays, model has {len(params)}"
            )
        # Validate every shape before assigning any: a mismatch half-way
        # through must not leave the model partially overwritten.
        for i, (param, data) in enumerate(zip(params, state)):
            if param.data.shape != np.asarray(data).shape:
                raise ValueError(
                    f"parameter {i}: shape mismatch "
                    f"{param.data.shape} vs {np.asarray(data).shape}"
                )
        for param, data in zip(params, state):
            param.data = np.asarray(data, dtype=param.data.dtype).copy()


def _glorot(rng: np.random.Generator, *shape: int) -> np.ndarray:
    fan_in, fan_out = shape[-1], shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class Linear(Module):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.weight = Tensor(
            _glorot(rng, in_features, out_features), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def __call__(self, x: Tensor) -> Tensor:
        return linear(x, self.weight, self.bias)


class Conv1d(Module):
    """1-D convolution layer over ``(batch, c_in, length)`` inputs.

    Keeps a private :class:`Workspace` so the im2col scratch buffer is
    recycled across training steps instead of reallocated per batch.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
    ):
        scale = np.sqrt(2.0 / (in_channels * kernel_size))
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(out_channels, in_channels, kernel_size)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True)
        self.stride = stride
        self._workspace = Workspace()

    def __call__(self, x: Tensor) -> Tensor:
        return conv1d(
            x, self.weight, self.bias, stride=self.stride,
            workspace=self._workspace,
        )


class Dropout(Module):
    """Inverted dropout with its own RNG stream."""

    def __init__(self, rate: float, rng: np.random.Generator):
        self.rate = rate
        self.rng = rng
        self.training = True

    def __call__(self, x: Tensor) -> Tensor:
        return dropout(x, self.rate, self.rng, training=self.training)


class GraphConv(Module):
    """DGCNN graph convolution (paper Eq. 4).

    Computes ``H' = tanh( D^-1 (A + I) H W )`` through the fused
    :func:`repro.nn.functional.graph_conv` kernel; the normalized operator
    ``D^-1 (A + I)`` is precomputed by the batcher and passed as a constant
    — ideally a cached :class:`~repro.nn.sparse.SparseOp`
    (``GraphBatch.operator``) so layers share one format conversion per
    batch.  ``out``/``workspace`` forward straight to the kernel (see
    :func:`repro.nn.functional.graph_conv`).
    """

    def __init__(self, in_channels: int, out_channels: int, rng: np.random.Generator):
        self.weight = Tensor(
            _glorot(rng, in_channels, out_channels), requires_grad=True
        )

    def __call__(
        self,
        norm_adj,
        h: Tensor,
        out: np.ndarray | None = None,
        workspace: Workspace | None = None,
        feature_cols: np.ndarray | None = None,
    ) -> Tensor:
        return graph_conv(
            norm_adj, h, self.weight,
            out=out, workspace=workspace, feature_cols=feature_cols,
        )
