"""Versioned npz codec — the one serializer for every on-disk artifact.

Everything the artifact store persists (locked netlists, trained attack
results, :class:`~repro.linkpred.trainer.Trainer` checkpoints) goes
through :func:`dump` / :func:`load`: a *payload* — an arbitrary tree of
``dict`` / ``list`` / ``tuple`` / ``str`` / ``int`` / ``float`` /
``bool`` / ``None`` / :class:`numpy.ndarray` — is flattened into one
``.npz`` archive.  Arrays are stored as native npz entries (dtype and
bit pattern preserved exactly, which is what makes optimizer moments and
RNG streams round-trip bit-identically); the tree structure is stored as
a JSON manifest with array placeholders.  JSON is read and written by
Python, so arbitrary-precision ints (PCG64 carries 128-bit state words),
``inf`` and ``nan`` all survive the round trip.

Writes are atomic — the archive is assembled in a same-directory
temporary file and ``os.replace``d into place — so a reader never
observes a torn file, and two writers racing on one path leave whichever
finished last (both wrote the same content-addressed payload anyway).
Reads never unpickle (``allow_pickle=False``): a corrupt or malicious
file can fail, but not execute.

Every archive records the codec version and a caller-chosen *kind*
(``"lock"``, ``"attack"``, ``"checkpoint"``, ...); :func:`load` verifies
both, so a file of the wrong flavour — or from an incompatible writer —
raises :class:`CodecError` instead of decoding into nonsense.
"""

from __future__ import annotations

import errno
import io
import json
import os
import uuid
from pathlib import Path
from typing import Any

import numpy as np

from repro import faults
from repro.errors import ReproError

__all__ = ["CODEC_VERSION", "CodecError", "dump", "dumps", "load", "loads"]

#: Bump when the manifest layout below changes incompatibly.
CODEC_VERSION = 1

_MANIFEST_ENTRY = "__repro_manifest__"


class CodecError(ReproError):
    """An artifact file could not be encoded or decoded."""


def _flatten(node: Any, arrays: list[np.ndarray]) -> Any:
    """Replace every ndarray in the tree with a placeholder reference."""
    if isinstance(node, np.ndarray):
        if node.dtype == object:
            # savez would silently pickle it, and load (allow_pickle=False)
            # could then never read it back: a write-once-hit-never entry.
            raise CodecError("object-dtype arrays cannot be stored")
        arrays.append(node)
        return {"__array__": len(arrays) - 1}
    if isinstance(node, np.generic):
        # Preserve the exact dtype of numpy scalars by storing a 0-d array.
        arrays.append(np.asarray(node))
        return {"__array__": len(arrays) - 1, "scalar": True}
    if isinstance(node, dict):
        for key in node:
            if not isinstance(key, str):
                raise CodecError(
                    f"payload dict keys must be str, got {type(key).__name__}"
                )
            if key in ("__array__", "__tuple__"):
                raise CodecError(f"reserved payload key {key!r}")
        return {key: _flatten(value, arrays) for key, value in node.items()}
    if isinstance(node, tuple):
        return {"__tuple__": [_flatten(item, arrays) for item in node]}
    if isinstance(node, list):
        return [_flatten(item, arrays) for item in node]
    if node is None or isinstance(node, (str, int, float, bool)):
        return node
    raise CodecError(f"unsupported payload type {type(node).__name__}")


def _expand(node: Any, arrays: dict[str, np.ndarray]) -> Any:
    if isinstance(node, dict):
        if "__array__" in node:
            array = arrays[f"a{node['__array__']}"]
            return array[()] if node.get("scalar") else array
        if "__tuple__" in node:
            return tuple(_expand(item, arrays) for item in node["__tuple__"])
        return {key: _expand(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_expand(item, arrays) for item in node]
    return node


def _manifest(payload: Any, kind: str, arrays: list[np.ndarray]) -> str:
    tree = _flatten(payload, arrays)
    return json.dumps(
        {"codec": CODEC_VERSION, "kind": kind, "tree": tree},
        separators=(",", ":"),
    )


def dumps(payload: Any, kind: str) -> bytes:
    """Serialize *payload* to an in-memory npz archive.

    The byte-for-byte same format as :func:`dump` writes to disk — the
    message flavour of the codec, used for process-boundary exchanges
    (the data-parallel trainer ships model state, shard gradients and
    curvature statistics this way) with the same bit-exact array and
    arbitrary-precision-int round-trip guarantees.
    """
    arrays: list[np.ndarray] = []
    manifest = _manifest(payload, kind, arrays)
    buffer = io.BytesIO()
    np.savez(
        buffer,
        **{_MANIFEST_ENTRY: np.array(manifest)},
        **{f"a{i}": array for i, array in enumerate(arrays)},
    )
    return buffer.getvalue()


def loads(blob: bytes, kind: str) -> Any:
    """Decode a message written by :func:`dumps` (same checks as :func:`load`)."""
    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
            manifest, arrays = _read_archive(archive, "<message>")
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"unreadable codec message ({exc})") from exc
    return _check_manifest(manifest, arrays, "<message>", kind)


def dump(payload: Any, path: str | os.PathLike, kind: str) -> None:
    """Serialize *payload* to *path* atomically (tmp file + rename)."""
    arrays: list[np.ndarray] = []
    manifest = _manifest(payload, kind, arrays)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Unique same-directory tmp name: concurrent writers never share a tmp
    # file, and os.replace makes publication atomic on POSIX and Windows.
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
    if faults.fire("store.write_enospc"):
        raise OSError(
            errno.ENOSPC, "injected fault store.write_enospc", str(tmp)
        )
    try:
        with open(tmp, "wb") as handle:
            np.savez(
                handle,
                **{_MANIFEST_ENTRY: np.array(manifest)},
                **{f"a{i}": array for i, array in enumerate(arrays)},
            )
            if faults.fire("store.write_torn"):
                # Leave a half-written tmp file behind the raise — the
                # shape a crash mid-savez leaves on disk.
                handle.flush()
                handle.truncate(max(handle.tell() // 2, 1))
                raise OSError(
                    errno.EIO, "injected fault store.write_torn", str(tmp)
                )
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed write never leaves a stray tmp behind
            tmp.unlink()


def load(path: str | os.PathLike, kind: str) -> Any:
    """Decode an artifact written by :func:`dump`.

    Raises:
        FileNotFoundError: *path* does not exist (a plain cache miss —
            callers distinguish it from corruption).
        CodecError: the file exists but is torn, corrupt, not a codec
            archive, of a different *kind*, or from an incompatible
            codec version.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            manifest, arrays = _read_archive(archive, str(path))
    except FileNotFoundError:
        raise
    except CodecError:
        raise
    except Exception as exc:  # zipfile/json/numpy corruption flavours
        raise CodecError(f"{path}: unreadable artifact ({exc})") from exc
    if faults.fire("store.read_corrupt"):
        # After the successful parse, so a genuinely missing file stays
        # a plain miss — the injected flavour is bit rot on a file that
        # exists, which callers must treat as corruption.
        raise CodecError(f"{path}: injected fault store.read_corrupt")
    return _check_manifest(manifest, arrays, str(path), kind)


def _read_archive(archive, source: str) -> tuple[dict, dict[str, np.ndarray]]:
    if _MANIFEST_ENTRY not in archive:
        raise CodecError(f"{source}: not a repro.store artifact")
    manifest = json.loads(str(archive[_MANIFEST_ENTRY][()]))
    arrays = {
        name: archive[name]
        for name in archive.files
        if name != _MANIFEST_ENTRY
    }
    return manifest, arrays


def _check_manifest(
    manifest: dict, arrays: dict[str, np.ndarray], source: str, kind: str
) -> Any:
    if manifest.get("codec") != CODEC_VERSION:
        raise CodecError(
            f"{source}: codec version {manifest.get('codec')!r} "
            f"(this reader is {CODEC_VERSION})"
        )
    if manifest.get("kind") != kind:
        raise CodecError(
            f"{source}: artifact kind {manifest.get('kind')!r}, expected {kind!r}"
        )
    return _expand(manifest["tree"], arrays)
