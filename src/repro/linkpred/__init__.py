"""SEAL-style link-prediction pipeline over locked netlists."""

from repro.linkpred.dataset import (
    LinkDataset,
    TargetExample,
    build_link_dataset,
    build_target_examples,
)
from repro.linkpred.graph import AttackGraph, MuxTarget, extract_attack_graph
from repro.linkpred.sampling import LinkSample, sample_links
from repro.linkpred.subgraph import (
    EnclosingSubgraph,
    drnl_label,
    extract_enclosing_subgraph,
)
from repro.linkpred.trainer import (
    TrainConfig,
    TrainHistory,
    score_examples,
    train_link_predictor,
)

__all__ = [
    "AttackGraph",
    "MuxTarget",
    "extract_attack_graph",
    "EnclosingSubgraph",
    "drnl_label",
    "extract_enclosing_subgraph",
    "LinkSample",
    "sample_links",
    "LinkDataset",
    "TargetExample",
    "build_link_dataset",
    "build_target_examples",
    "TrainConfig",
    "TrainHistory",
    "train_link_predictor",
    "score_examples",
]
