"""Tests for D-MUX locking (functional + structural scheme guarantees)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import random_netlist
from repro.errors import LockingError
from repro.locking import Strategy, apply_key, key_inputs_of, lock_dmux
from repro.netlist import GateType
from repro.opt import cleanup, propagate_constants
from repro.sim import hamming_distance


def small_circuit(seed=0):
    return random_netlist("base", 10, 5, 120, seed=seed)


def test_basic_locking_shape():
    base = small_circuit()
    locked = lock_dmux(base, key_size=8, seed=1)
    assert locked.key_size == 8
    assert len(locked.key) == 8
    assert set(locked.key) <= {"0", "1"}
    assert locked.scheme == "D-MUX"
    assert key_inputs_of(locked.circuit) == tuple(
        f"keyinput{i}" for i in range(8)
    )
    # Every key bit is used by at least one MUX.
    used = {m.key_index for m in locked.mux_instances()}
    assert used == set(range(8))


def test_correct_key_recovers_function():
    base = small_circuit(seed=3)
    locked = lock_dmux(base, key_size=12, seed=7)
    unlocked = apply_key(locked.circuit, locked.key)
    assert hamming_distance(base, unlocked, n_patterns=2048) == 0.0


def test_wrong_key_corrupts_function():
    """At least one all-bits-flipped key over several instances corrupts.

    A single instance can escape corruption when every decoy happens to be
    functionally equivalent to its true wire (incidental equivalences occur
    in highly-correlated random logic), so the property is asserted over a
    batch."""
    corrupted_any = 0.0
    for seed in (4, 5, 6):
        base = small_circuit(seed=seed)
        locked = lock_dmux(base, key_size=12, seed=seed + 4)
        wrong = "".join("1" if c == "0" else "0" for c in locked.key)
        corrupted = apply_key(locked.circuit, wrong)
        corrupted_any += hamming_distance(base, corrupted, n_patterns=2048)
    assert corrupted_any > 0.0


def test_no_loops_and_valid():
    base = small_circuit(seed=5)
    locked = lock_dmux(base, key_size=16, seed=9)
    locked.circuit.validate()
    assert not locked.circuit.has_combinational_loop()


def test_no_circuit_reduction_single_bit():
    """Hard-coding any single key bit to either value leaves no dangling
    logic — the core D-MUX resilience property against SAAM."""
    base = small_circuit(seed=6)
    locked = lock_dmux(base, key_size=10, seed=10)
    for bit in range(10):
        for value in (0, 1):
            simplified = propagate_constants(
                locked.circuit, {f"keyinput{bit}": value}
            )
            cleaned, removed = __import__(
                "repro.opt", fromlist=["remove_dead_logic"]
            ).remove_dead_logic(simplified)
            assert removed == 0, (
                f"bit {bit}={value} caused reduction of {removed} gates"
            )


def test_locality_records_are_consistent():
    base = small_circuit(seed=7)
    locked = lock_dmux(base, key_size=10, seed=11)
    for loc in locked.localities:
        for mux in loc.muxes:
            gate = locked.circuit.gate(mux.mux_name)
            assert gate.gate_type is GateType.MUX
            sel, d0, d1 = gate.inputs
            assert sel == mux.key_name
            # Wiring matches the recorded select_for_true.
            expected = (
                (mux.true_net, mux.false_net)
                if mux.select_for_true == 0
                else (mux.false_net, mux.true_net)
            )
            assert (d0, d1) == expected
            # The load gate reads the MUX where the true net used to be.
            assert mux.mux_name in locked.circuit.gate(mux.load_gate).inputs
            # Recorded key bit matches the key string.
            assert locked.key[mux.key_index] == str(mux.select_for_true)


def test_s1_s5_pairs_have_complementary_bits():
    base = small_circuit(seed=8)
    locked = lock_dmux(base, key_size=16, seed=12)
    for loc in locked.localities:
        if loc.strategy is Strategy.S1:
            mi, mj = loc.muxes
            assert mi.select_for_true != mj.select_for_true
            # Same data-pin order on both MUXes.
            gi = locked.circuit.gate(mi.mux_name)
            gj = locked.circuit.gate(mj.mux_name)
            assert gi.inputs[1:] == gj.inputs[1:]
        if loc.strategy is Strategy.S4:
            mi, mj = loc.muxes
            assert mi.key_index == mj.key_index
            gi = locked.circuit.gate(mi.mux_name)
            gj = locked.circuit.gate(mj.mux_name)
            assert gi.inputs[1:] == gj.inputs[1:][::-1]


def test_eD_MUX_prefers_cheap_strategies():
    """On a fan-out-rich circuit S4 should be rare (it is the fallback)."""
    base = small_circuit(seed=9)
    locked = lock_dmux(base, key_size=20, seed=13)
    s4 = sum(1 for loc in locked.localities if loc.strategy is Strategy.S4)
    assert s4 <= len(locked.localities) // 2


def test_determinism():
    base = small_circuit(seed=10)
    a = lock_dmux(base, key_size=8, seed=5)
    b = lock_dmux(base, key_size=8, seed=5)
    assert a.key == b.key
    assert a.circuit.gates == b.circuit.gates


def test_source_circuit_unchanged():
    base = small_circuit(seed=11)
    gates_before = base.gates
    lock_dmux(base, key_size=8, seed=1)
    assert base.gates == gates_before


def test_invalid_key_size():
    with pytest.raises(LockingError):
        lock_dmux(small_circuit(), key_size=0)


def test_oversized_key_raises():
    tiny = random_netlist("tiny", 3, 2, 6, seed=0)
    with pytest.raises(LockingError):
        lock_dmux(tiny, key_size=64, seed=0)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100), key_size=st.sampled_from([4, 8, 14]))
def test_functional_preservation_property(seed, key_size):
    base = random_netlist("prop", 8, 4, 100, seed=seed)
    locked = lock_dmux(base, key_size=key_size, seed=seed)
    unlocked = apply_key(locked.circuit, locked.key)
    assert hamming_distance(base, unlocked, n_patterns=512, seed=seed) == 0.0


def test_localities_are_strategy_enums_and_s1_occurs():
    """Regression: numpy permutation once coerced Strategy members to
    numpy strings, silently disabling S1 and corrupting locality tags."""
    base = small_circuit(seed=12)
    locked = lock_dmux(base, key_size=20, seed=3)
    assert all(isinstance(loc.strategy, Strategy) for loc in locked.localities)
    used = {loc.strategy for loc in locked.localities}
    assert used <= {Strategy.S1, Strategy.S2, Strategy.S3, Strategy.S4}
    # With a fanout-rich circuit and 20 bits, S1 must fire sometimes.
    seen_s1 = any(
        loc.strategy is Strategy.S1
        for seed in range(4)
        for loc in lock_dmux(base, key_size=16, seed=seed).localities
    )
    assert seen_s1
