"""SEAL-style link-prediction pipeline over locked netlists.

The data path is fully vectorized: :class:`AttackGraph` stores its
adjacency as flat CSR arrays, :func:`extract_enclosing_subgraphs` expands
all BFS frontiers of a batch of target pairs together over those arrays
(reusing distance maps across pairs that share an endpoint), and
:func:`build_link_dataset` featurizes whole splits array-at-a-time —
optionally fanned out over a ``multiprocessing`` pool via ``n_workers``.
"""

from repro.linkpred.dataset import (
    LinkDataset,
    TargetExample,
    build_link_dataset,
    build_target_examples,
    iter_target_examples,
)
from repro.linkpred.graph import AttackGraph, MuxTarget, extract_attack_graph
from repro.linkpred.sampling import LinkSample, sample_links
from repro.linkpred.subgraph import (
    EnclosingSubgraph,
    drnl_label,
    drnl_label_array,
    extract_enclosing_subgraph,
    extract_enclosing_subgraphs,
)
from repro.linkpred.trainer import (
    TrainConfig,
    Trainer,
    TrainHistory,
    make_trainer,
    score_examples,
    score_stream,
    train_link_predictor,
)

__all__ = [
    "AttackGraph",
    "MuxTarget",
    "extract_attack_graph",
    "EnclosingSubgraph",
    "drnl_label",
    "drnl_label_array",
    "extract_enclosing_subgraph",
    "extract_enclosing_subgraphs",
    "LinkSample",
    "sample_links",
    "LinkDataset",
    "TargetExample",
    "build_link_dataset",
    "build_target_examples",
    "iter_target_examples",
    "TrainConfig",
    "Trainer",
    "make_trainer",
    "TrainHistory",
    "train_link_predictor",
    "score_examples",
    "score_stream",
]
