"""Filesystem spool-directory job bus.

Layout (all codec npz files, atomic same-dir tmp + rename writes)::

    <spool>/pending/<store_key>.npz      # enqueued job, waiting for a lease
    <spool>/leased/<store_key>.npz       # claimed; mtime is the heartbeat
    <spool>/quarantine/<store_key>.npz   # poisoned job + persisted traceback

The **lease** is an atomic ``os.rename`` from ``pending/`` to
``leased/``: exactly one worker wins a job, with no locks and no server.
While executing, the holder touches the leased file's mtime every few
seconds; a lease whose mtime goes stale (``stale_after``) is presumed
orphaned — its worker was SIGKILLed or lost power — and any other
process (coordinator or worker) *reaps* it back to ``pending/`` with the
attempt count bumped.  A job that fails or expires ``max_attempts``
times moves to ``quarantine/`` with the traceback persisted, so a
deterministic crash can never ping-pong between workers forever.

Results never travel through the spool: a worker executes
:func:`~repro.experiments.runner.execute_attack_job` and writes the
artifact into the shared :class:`~repro.store.ArtifactStore` under the
job's own ``store_key``.  The coordinator (:class:`SpoolBus`) simply
polls the store for its pending keys — which also adopts results
computed by workers that started *before* the coordinator, or by a
different coordinator sharing the spool.
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro import faults
from repro.bus.protocol import (
    BUS_JOB_KIND,
    BUS_QUARANTINE_KIND,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_POLL,
    DEFAULT_STALE_AFTER,
    BusError,
    JobBus,
    QuarantinedJob,
    RetryPolicy,
    encode_job,
)
from repro.store import codec
from repro.store.codec import CodecError

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import AttackJob
    from repro.store import ArtifactStore

__all__ = ["SpoolBus", "SpoolDir"]


class SpoolDir:
    """The on-disk queue: enqueue / lease / heartbeat / requeue / quarantine."""

    def __init__(
        self,
        root: str | os.PathLike,
        stale_after: float = DEFAULT_STALE_AFTER,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        self.root = Path(root)
        self.stale_after = float(stale_after)
        self.max_attempts = int(max_attempts)
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")

    # -- paths ---------------------------------------------------------------
    @property
    def pending_dir(self) -> Path:
        return self.root / "pending"

    @property
    def leased_dir(self) -> Path:
        return self.root / "leased"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @staticmethod
    def _check_key(key: str) -> str:
        if not key or any(c in key for c in "/\\."):
            raise ValueError(f"malformed job key {key!r}")
        return key

    def _keys(self, directory: Path) -> list[str]:
        if not directory.is_dir():
            return []
        return sorted(p.stem for p in directory.glob("*.npz"))

    def pending_keys(self) -> list[str]:
        return self._keys(self.pending_dir)

    def leased_keys(self) -> list[str]:
        return self._keys(self.leased_dir)

    def quarantined_keys(self) -> list[str]:
        return self._keys(self.quarantine_dir)

    def referenced_keys(self) -> set[str]:
        """Store keys of in-flight jobs — ``repro cache gc`` must keep these.

        The spool file name *is* the job's attack store key, so the
        pending + leased stems are exactly the artifact addresses a
        worker is about to write / a coordinator is about to adopt.
        """
        return set(self.pending_keys()) | set(self.leased_keys())

    # -- queue operations ----------------------------------------------------
    def enqueue(self, key: str, job_payload: dict) -> bool:
        """Atomically add a job; ``False`` when it is already in flight."""
        self._check_key(key)
        if (
            (self.pending_dir / f"{key}.npz").exists()
            or (self.leased_dir / f"{key}.npz").exists()
            or (self.quarantine_dir / f"{key}.npz").exists()
        ):
            return False
        codec.dump(
            {"job": job_payload, "attempt": 0, "last_error": None},
            self.pending_dir / f"{key}.npz",
            kind=BUS_JOB_KIND,
        )
        return True

    def lease(self) -> tuple[str, dict] | None:
        """Claim one pending job, or ``None`` when the spool is idle."""
        batch = self.lease_batch(1)
        return batch[0] if batch else None

    def lease_batch(self, limit: int) -> list[tuple[str, dict]]:
        """Claim up to *limit* pending jobs from **one** directory scan.

        The sorted-scan + rename cost dominates spool overhead on small
        jobs (measured ~122 ms/job in ``bench_bus``), so a worker that
        can hold several leases amortizes the scan across all of them.
        The rename into ``leased/`` stays the mutual exclusion: losing a
        race surfaces as ``FileNotFoundError`` and the next candidate is
        tried.  An unreadable job file is quarantined on the spot (it
        can never execute, and leaving it would wedge every worker).
        Every claimed lease must keep heartbeating until completed or
        released — holders should size *limit* well inside what they can
        execute within ``stale_after``-spaced heartbeats.
        """
        if limit < 1:
            raise ValueError(f"lease batch limit must be >= 1, got {limit}")
        self.leased_dir.mkdir(parents=True, exist_ok=True)
        leased: list[tuple[str, dict]] = []
        for path in sorted(self.pending_dir.glob("*.npz")):
            if len(leased) >= limit:
                break
            if faults.fire("spool.lease_race"):
                continue  # injected: lose the rename race on this one
            target = self.leased_dir / path.name
            try:
                os.rename(path, target)
            except FileNotFoundError:
                continue  # another worker won this job
            # rename preserves the pending-file mtime, which already
            # looks stale to a reaper whenever the job sat queued longer
            # than stale_after — stamp lease birth *before* decoding, or
            # a concurrent reap_stale can steal the fresh lease.
            try:
                os.utime(target)  # heartbeat zero = lease birth
            except FileNotFoundError:
                continue  # reaped in the rename window; the reaper retries it
            try:
                payload = codec.load(target, kind=BUS_JOB_KIND)
            except FileNotFoundError:
                continue  # lost a reap race after all — not a poisoned job
            except CodecError as exc:
                self._quarantine_raw(
                    target, {"job": None}, 0, f"unreadable job file: {exc}"
                )
                continue
            leased.append((path.stem, payload))
        return leased

    def heartbeat(self, key: str) -> bool:
        """Refresh a held lease; ``False`` when it was reaped meanwhile."""
        try:
            os.utime(self.leased_dir / f"{key}.npz")
            return True
        except FileNotFoundError:
            return False

    def complete(self, key: str) -> None:
        """Drop a finished lease (the artifact already sits in the store)."""
        try:
            (self.leased_dir / f"{key}.npz").unlink()
        except FileNotFoundError:
            pass  # reaped while we executed; the requeued copy is harmless

    def fail(self, key: str, traceback_text: str) -> bool:
        """Report a failed execution; returns ``True`` when quarantined."""
        claimed = self._claim(self.leased_dir / f"{key}.npz")
        if claimed is None:
            return False  # reaped concurrently; the reaper owns the retry
        return self._requeue(claimed, traceback_text)

    def release(self, key: str, reason: str = "lease released") -> bool:
        """Return a held lease to pending (e.g. a proxied worker vanished)."""
        return self.fail(key, reason)

    def withdraw(self, key: str) -> bool:
        """Remove a pending job (the coordinator is taking it back)."""
        self._check_key(key)
        try:
            (self.pending_dir / f"{key}.npz").unlink()
            return True
        except FileNotFoundError:
            return False

    def reap_stale(self) -> int:
        """Requeue every lease whose heartbeat went stale; returns count.

        Rename-winner semantics, mirroring :meth:`lease`: two peers
        reaping the same expired lease concurrently bump the attempt
        counter exactly once.  The subtlety is that winning the claim
        rename does **not** prove the lease was still stale — between
        this reaper's staleness check and its rename, a peer may have
        already reaped the lease, a worker re-leased the requeued copy,
        and the freshly stamped lease landed back at the same path.  The
        claim rename preserves mtime, so the winner re-checks on the
        claimed file and hands a fresh lease straight back untouched.
        """
        cutoff = time.time() - self.stale_after
        reaped = 0
        for path in list(self.leased_dir.glob("*.npz")):
            try:
                if path.stat().st_mtime >= cutoff:
                    continue
            except OSError:
                continue  # completed or claimed under us
            claimed = self._claim(path)
            if claimed is None:
                continue  # a peer reaper won this lease
            try:
                fresh = claimed.stat().st_mtime >= cutoff
            except OSError:  # pragma: no cover - racing orphan sweep
                continue
            if fresh:
                # Not stale after all (reaped + re-leased under us):
                # return it to the worker that owns it now.
                try:
                    os.rename(claimed, path)
                    continue
                except OSError:  # pragma: no cover - catastrophic fs
                    pass  # fall through: requeue rather than lose the job
            else:
                try:
                    # Stamp ownership of the claim: the orphan sweep
                    # below must not double-process a claim whose reaper
                    # is alive and mid-requeue.
                    os.utime(claimed)
                except OSError:
                    continue  # orphan-swept under us; that peer owns it
            self._requeue(
                claimed,
                f"lease expired (no heartbeat for > {self.stale_after:.0f}s; "
                "worker presumed dead)",
            )
            reaped += 1
        # Orphaned claims: a reaper that crashed between claiming and
        # requeueing would otherwise strand the job forever.  A live
        # claimer stamps its claim above, so only claims idle for a full
        # stale_after are adopted.
        for claim in list(self.leased_dir.glob("*.claim")):
            try:
                if claim.stat().st_mtime >= cutoff:
                    continue
            except OSError:
                continue
            self._requeue(
                claim,
                "reap claim orphaned (claiming peer presumed dead)",
            )
            reaped += 1
        return reaped

    def quarantined(self) -> list[QuarantinedJob]:
        """Decode every poisoned job (with its persisted traceback)."""
        out = []
        for path in sorted(self.quarantine_dir.glob("*.npz")):
            try:
                payload = codec.load(path, kind=BUS_QUARANTINE_KIND)
            except (CodecError, FileNotFoundError):
                continue
            out.append(
                QuarantinedJob(
                    key=path.stem,
                    attempts=int(payload["attempts"]),
                    traceback=str(payload["traceback"]),
                    payload=payload,
                )
            )
        return out

    # -- internals -----------------------------------------------------------
    def _claim(self, path: Path) -> Path | None:
        """Take exclusive ownership of a leased file (reaper-vs-worker race).

        The claim is another atomic rename, to a ``.claim`` name that no
        ``*.npz`` glob matches — whoever wins decides the job's fate,
        the loser backs off.
        """
        claim = path.with_name(f"{path.stem}.{uuid.uuid4().hex}.claim")
        try:
            os.rename(path, claim)
        except FileNotFoundError:
            return None
        return claim

    def _requeue(self, claimed: Path, error: str) -> bool:
        key = claimed.name.split(".", 1)[0]
        try:
            payload = codec.load(claimed, kind=BUS_JOB_KIND)
        except (CodecError, FileNotFoundError):
            payload = {"job": None, "attempt": self.max_attempts, "last_error": None}
        attempt = int(payload.get("attempt", 0)) + 1
        quarantined = attempt >= self.max_attempts
        if quarantined:
            self._quarantine_raw(claimed, payload, attempt, error)
        else:
            codec.dump(
                {"job": payload["job"], "attempt": attempt, "last_error": error},
                self.pending_dir / f"{key}.npz",
                kind=BUS_JOB_KIND,
            )
            claimed.unlink(missing_ok=True)
        return quarantined

    def _quarantine_raw(
        self, source: Path, payload: dict, attempts: int, error: str
    ) -> None:
        key = source.name.split(".", 1)[0]
        codec.dump(
            {"job": payload.get("job"), "attempts": attempts, "traceback": error},
            self.quarantine_dir / f"{key}.npz",
            kind=BUS_QUARANTINE_KIND,
        )
        source.unlink(missing_ok=True)


class SpoolBus(JobBus):
    """Coordinator side of the spool: enqueue, poll the store, adopt.

    The coordinator performs no attack compute in this mode — N
    ``repro worker --bus-dir`` processes (this host or any host sharing
    the directory and the store) do — but it *does* housekeep: every
    poll cycle reaps stale leases and checks for quarantined jobs, so a
    dead worker cannot stall the grid and a poisoned job surfaces its
    stored traceback instead of looping forever.
    """

    name = "spool"

    def __init__(
        self,
        spool: SpoolDir | str | os.PathLike,
        store: "ArtifactStore | str | os.PathLike",
        poll: float = DEFAULT_POLL,
        timeout: float | None = None,
        liveness: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__()
        from repro.store import resolve_store

        self.spool = spool if isinstance(spool, SpoolDir) else SpoolDir(spool)
        self.store = resolve_store(store)
        if self.store is None:
            raise BusError("spool bus needs a shared artifact store")
        self.poll = float(poll)
        self.timeout = timeout
        # Graceful-degradation deadline: None/0 disables fail-over.
        self.liveness = float(liveness) if liveness else None
        self.retry = retry if retry is not None else RetryPolicy.from_env()

    def run(
        self, jobs: "list[AttackJob]"
    ) -> "Iterator[tuple[AttackJob, dict, bool]]":
        t0 = time.perf_counter()
        waiting: dict[str, AttackJob] = {}
        for job in jobs:
            # Transient spool-write failures (ENOSPC, flaky mount) are
            # retried on the shared backoff schedule; enqueue itself is
            # atomic (tmp + rename), so a failed attempt leaves nothing.
            self.retry.call(
                lambda j=job: self.spool.enqueue(j.store_key, encode_job(j)),
                retry_on=(OSError,),
                describe="spool enqueue",
            )
            waiting[job.store_key] = job
            self.stats.submitted += 1
        self.stats.submit_seconds += time.perf_counter() - t0

        last_progress = time.monotonic()
        while waiting:
            t0 = time.perf_counter()
            progressed = False
            for key in list(waiting):
                kind = getattr(waiting[key], "artifact_kind", "attacks")
                if not self.store.has(kind, key):
                    continue
                payload = self.store.get(kind, key)
                if payload is None:
                    # A worker published a torn/corrupt artifact: drop it
                    # and put the job back on the queue instead of
                    # polling the bad file forever.
                    self.store.path_for(kind, key).unlink(missing_ok=True)
                    self.spool.enqueue(key, encode_job(waiting[key]))
                    continue
                job = waiting.pop(key)
                self.stats.completed += 1
                self.stats.adopted += 1
                progressed = True
                self.stats.adopt_seconds += time.perf_counter() - t0
                yield job, payload, True
                t0 = time.perf_counter()
            for poisoned in self.spool.quarantined():
                if poisoned.key in waiting:
                    self.stats.quarantined += 1
                    raise BusError(
                        f"job {poisoned.key[:12]}… quarantined after "
                        f"{poisoned.attempts} attempt(s); persisted worker "
                        f"traceback:\n{poisoned.traceback}"
                    )
            self.stats.requeues += self.spool.reap_stale()
            self.stats.adopt_seconds += time.perf_counter() - t0
            if not waiting:
                break
            now = time.monotonic()
            if progressed or self.spool.leased_keys():
                last_progress = now  # a live lease counts as progress
            else:
                quiet = now - last_progress
                if self.timeout is not None and quiet > self.timeout:
                    raise BusError(
                        f"spool bus made no progress for {self.timeout:.0f}s "
                        f"— {len(waiting)} job(s) still pending and no live "
                        f"leases; are any `repro worker --bus-dir "
                        f"{self.spool.root}` processes running?"
                    )
                if self.liveness is not None and quiet > self.liveness:
                    # Graceful degradation: the worker fleet is dead or
                    # was never started.  Take the jobs back from the
                    # spool and finish the grid in this process — a
                    # figure run must never hang on a silent bus.
                    remaining = list(waiting.values())
                    for key in waiting:
                        self.spool.withdraw(key)
                    waiting.clear()
                    yield from self._failover(
                        remaining,
                        f"no worker progress for {self.liveness:.0f}s",
                    )
                    return
            time.sleep(self.poll)
