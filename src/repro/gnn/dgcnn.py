"""DGCNN — deep graph convolutional neural network (Zhang et al., AAAI'18).

The exact architecture of the paper (Sec. IV "GNN Topology"):

* four graph-convolution layers with {32, 32, 32, 1} output channels and
  ``tanh`` activations (Eq. 4), run through the fused
  :func:`repro.nn.graph_conv` kernel,
* concatenation ``H^{1:L}`` of all layer outputs per node,
* SortPooling to the top-``k`` nodes ordered by the last (1-channel) layer
  — vectorized as a single lexsort over ``(graph_id, -score)`` plus one
  top-k scatter, instead of a per-graph argsort loop,
* two 1-D convolution layers with {16, 32} output channels — the first has
  kernel/stride equal to the per-node feature width, the second kernel 5 —
  with a max-pool of size 2 in between, ReLU activations,
* a 128-unit dense layer, dropout 0.5, and a 2-way softmax output.

Inference (``predict_proba``) runs under :func:`repro.nn.no_grad`, so
evaluation and scoring record no tape and keep no intermediates alive.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.batching import GraphBatch
from repro.nn import (
    Conv1d,
    Dropout,
    GraphConv,
    Linear,
    Module,
    Tensor,
    concat,
    max_pool1d,
    no_grad,
    softmax,
    softmax_cross_entropy,
)

__all__ = ["DGCNN", "choose_sortpool_k"]

#: Smallest usable SortPooling k: after the width-2 max-pool the second
#: convolution (kernel 5) still needs at least one output position.
MIN_SORTPOOL_K = 10


def choose_sortpool_k(
    subgraph_sizes: list[int], percentile: float = 0.6
) -> int:
    """Pick k so that ``percentile`` of subgraphs have at most k nodes.

    Mirrors the paper: "we set k such that 60% of subgraphs have nodes less
    than or equal to k", clamped to :data:`MIN_SORTPOOL_K`.
    """
    if not subgraph_sizes:
        raise ValueError("need at least one subgraph size")
    if not 0.0 < percentile <= 1.0:
        raise ValueError(f"percentile must be in (0, 1], got {percentile}")
    k = int(np.quantile(np.asarray(subgraph_sizes), percentile))
    return max(MIN_SORTPOOL_K, k)


class DGCNN(Module):
    """Graph classifier for link prediction.

    Args:
        in_features: width of the node-information matrix.
        k: SortPooling size (use :func:`choose_sortpool_k`).
        gc_channels: per-layer graph-convolution output widths.
        conv_channels: the two 1-D convolution widths.
        dense_units: hidden dense-layer width.
        dropout: dropout rate before the output layer.
        seed: parameter-initialization / dropout seed.
    """

    def __init__(
        self,
        in_features: int,
        k: int,
        gc_channels: tuple[int, ...] = (32, 32, 32, 1),
        conv_channels: tuple[int, int] = (16, 32),
        dense_units: int = 128,
        dropout: float = 0.5,
        seed: int = 0,
    ):
        if k < MIN_SORTPOOL_K:
            raise ValueError(f"k must be >= {MIN_SORTPOOL_K}, got {k}")
        rng = np.random.default_rng(seed)
        self.k = k
        self.gc_layers = [
            GraphConv(cin, cout, rng)
            for cin, cout in zip((in_features,) + gc_channels[:-1], gc_channels)
        ]
        self.node_width = int(sum(gc_channels))
        self.conv1 = Conv1d(
            1, conv_channels[0], kernel_size=self.node_width,
            rng=rng, stride=self.node_width,
        )
        self.conv2 = Conv1d(
            conv_channels[0], conv_channels[1], kernel_size=5, rng=rng
        )
        conv2_len = (k // 2) - 4
        self.flat_width = conv_channels[1] * conv2_len
        self.fc1 = Linear(self.flat_width, dense_units, rng)
        self.dropout = Dropout(dropout, np.random.default_rng(seed + 1))
        self.fc2 = Linear(dense_units, 2, rng)
        self.training = True

    # ------------------------------------------------------------ plumbing
    def _sortpool_indices(self, last_layer: np.ndarray, batch: GraphBatch) -> np.ndarray:
        """Per-graph top-k node rows ordered by the 1-channel layer value.

        Fully vectorized: one stable lexsort over ``(graph_id, -score)``
        groups every graph's nodes contiguously in descending-score order
        (ties broken by original row, matching a per-graph stable argsort),
        then a single masked scatter writes the top-k rows of every graph.

        Returns absolute row indices into the stacked node matrix, ``-1``
        where a graph has fewer than k nodes (zero padding).
        """
        scores = last_layer[:, -1]
        graph_ids = batch.graph_ids
        # lexsort is stable and sorts by the last key first: primary
        # graph_id, secondary descending score, ties by original index.
        order = np.lexsort((-scores, graph_ids))
        # Sorted position j holds graph graph_ids[j] (grouping and group
        # sizes are unchanged by the sort), at within-graph rank
        # segment_positions[j].
        within = batch.segment_positions
        take = within < self.k
        indices = np.full(batch.n_graphs * self.k, -1, dtype=np.int64)
        indices[graph_ids[take] * self.k + within[take]] = order[take]
        return indices

    def forward(self, batch: GraphBatch) -> Tensor:
        """Compute ``(n_graphs, 2)`` classification logits."""
        h = Tensor(batch.features)
        layer_outputs: list[Tensor] = []
        for layer in self.gc_layers:
            h = layer(batch.norm_adj, h)
            layer_outputs.append(h)
        h_cat = concat(layer_outputs, axis=1)  # (N, node_width)

        indices = self._sortpool_indices(layer_outputs[-1].data, batch)
        # Sortpool indices never repeat a row, so the gradient scatter is a
        # direct assignment.
        pooled = h_cat.gather_rows(indices, unique=True)  # (B*k, node_width)
        pooled = pooled.reshape(batch.n_graphs, 1, self.k * self.node_width)

        z = self.conv1(pooled).relu()  # (B, c1, k)
        z = max_pool1d(z, 2, 2)  # (B, c1, k//2)
        z = self.conv2(z).relu()  # (B, c2, k//2 - 4)
        z = z.reshape(batch.n_graphs, self.flat_width)
        z = self.fc1(z).relu()
        z = self.dropout(z)
        return self.fc2(z)

    __call__ = forward

    def loss(self, batch: GraphBatch) -> Tensor:
        """Mean cross-entropy against the batch labels."""
        if (batch.labels < 0).any():
            raise ValueError("batch contains unlabeled graphs")
        return softmax_cross_entropy(self.forward(batch), batch.labels)

    def predict_proba(self, batch: GraphBatch) -> np.ndarray:
        """Per-graph likelihood of class 1 ("link exists").

        Runs in eval mode under ``no_grad``: no tape is recorded.
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                probs = softmax(self.forward(batch)).data
        finally:
            if was_training:
                self.train()
        return probs[:, 1]
