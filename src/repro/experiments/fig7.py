"""Fig. 7 — MuxLink AC/PC/KPA across benchmarks, schemes and key sizes.

Reproduced shape claims: MuxLink scores far above the 50 % floor on both
schemes; symmetric locking is weaker than D-MUX under the same K; larger
benchmarks are easier; plus the paper's aggregate "Summary" row.
"""

from __future__ import annotations

from repro.core.metrics import aggregate_metrics
from repro.experiments.common import (
    AttackRecord,
    ExperimentScale,
    active_scale,
    format_records,
)
from repro.experiments.runner import Cell, ExperimentRunner, make_cell
from repro.locking import DMUX_SCHEME, SYMMETRIC_SCHEME

__all__ = ["fig7_cells", "run_fig7", "format_fig7", "summarize_fig7"]


def fig7_cells(scale: ExperimentScale, seed: int = 0) -> list[Cell]:
    """The full (benchmark × scheme × key size) grid as declarative cells."""
    return [
        make_cell(scale, name, circuit_scale, scheme, key_size, seed)
        for scheme in (DMUX_SCHEME, SYMMETRIC_SCHEME)
        for name, circuit_scale, key_sizes in scale.benchmarks()
        for key_size in key_sizes
    ]


def run_fig7(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    runner: ExperimentRunner | None = None,
    jobs: int | None = None,
) -> list[AttackRecord]:
    """Run MuxLink over the full (benchmark × scheme × key size) grid.

    Cells execute through *runner* (or a fresh one honouring *jobs* /
    ``REPRO_JOBS``); sharing a runner across figures reuses its locked
    netlists and trained attacks.
    """
    scale = scale or active_scale()
    if runner is not None:
        return runner.run(fig7_cells(scale, seed))
    with ExperimentRunner(jobs=jobs) as owned:
        return owned.run(fig7_cells(scale, seed))


def summarize_fig7(records: list[AttackRecord]) -> dict[str, float]:
    """Aggregate scores (the paper's Summary: AC 96.87 %, PC 97.50 %)."""
    pooled = aggregate_metrics([r.metrics for r in records])
    per_scheme = {}
    for scheme in (DMUX_SCHEME, SYMMETRIC_SCHEME):
        subset = [r.metrics for r in records if r.scheme == scheme]
        if subset:
            per_scheme[scheme] = aggregate_metrics(subset)
    out = {
        "accuracy": pooled.accuracy,
        "precision": pooled.precision,
        "kpa": pooled.kpa,
    }
    for scheme, metrics in per_scheme.items():
        out[f"accuracy[{scheme}]"] = metrics.accuracy
        out[f"kpa[{scheme}]"] = metrics.kpa
    return out


def format_fig7(records: list[AttackRecord]) -> str:
    table = format_records(
        records, "Fig. 7 — MuxLink on D-MUX and symmetric MUX locking"
    )
    summary = summarize_fig7(records)
    lines = [table, "", "Summary (paper: AC 96.87%, PC 97.50%):"]
    for key, value in summary.items():
        lines.append(f"  {key:<28}{value:.3f}")
    return "\n".join(lines)
