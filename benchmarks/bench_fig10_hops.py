"""Fig. 10 bench — score and runtime versus the h-hop size."""

from repro.experiments import active_scale, format_fig10, run_fig10


def test_fig10_hop_study(bench_once, runner):
    scale = active_scale()
    rows = bench_once(run_fig10, scale=scale, hops=(1, 2, 3), runner=runner)
    print()
    print(format_fig10(rows))

    by_h = {r.h: r for r in rows}
    # Shape: the jump from h=1 to h>=2 dominates (paper Sec. IV).
    assert by_h[3].accuracy >= by_h[1].accuracy - 0.05
    # Shape: runtime grows with neighbourhood size.
    assert by_h[3].runtime_seconds > by_h[1].runtime_seconds
