"""Worker-death recovery: leases expire, jobs requeue, poison quarantines.

The robustness contract of the distributed buses:

* a SIGKILLed spool worker's lease goes stale (its heartbeat stops),
  any peer reaps it back to pending, and another worker completes the
  job — with the final figure table bit-identical to serial execution;
* a deterministically crashing job burns its attempt budget and lands in
  quarantine with the traceback persisted; the coordinator surfaces that
  traceback instead of looping forever;
* a socket worker that drops its connection mid-job has the job requeued
  and completed by a healthy worker.
"""

import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.benchgen import load_benchmark
from repro.bus import BusError, SocketBus, SpoolBus, SpoolDir, run_worker
from repro.bus.socketbus import recv_message, send_message
from repro.bus.worker import TEST_DELAY_ENV
from repro.experiments import (
    SMOKE_SCALE,
    ExperimentRunner,
    fig7_cells,
    format_fig7,
    record_fingerprint,
    run_fig7,
)
from repro.experiments.common import lock_with
from repro.experiments.runner import AttackJob
from repro.store import (
    ArtifactStore,
    attack_store_key,
    circuit_digest,
    encode_circuit,
)

_SRC_ROOT = str(pathlib.Path(repro.__file__).resolve().parents[1])
_STALE = 1.5


def _mask_runtime(table: str) -> str:
    """Blank the wall-clock column: a worker measures its own runtime."""
    return "\n".join(
        re.sub(r"\d+\.\d$", "<sec>", line) for line in table.splitlines()
    )


def _pending_jobs(cells) -> list[AttackJob]:
    """The unique AttackJobs of a cell grid (what the runner would enqueue)."""
    jobs = {}
    for cell in cells:
        base = load_benchmark(cell.benchmark, scale=cell.circuit_scale)
        locked = lock_with(
            cell.scheme, base, key_size=cell.key_size, seed=cell.lock_seed
        )
        key = attack_store_key(circuit_digest(locked.circuit), cell.config)
        jobs.setdefault(
            key,
            AttackJob(
                store_key=key,
                circuit=encode_circuit(locked.circuit),
                config=cell.config,
            ),
        )
    return list(jobs.values())


def _start_worker(spool_dir, store_dir, delay: float | None = None):
    env = {
        "PATH": "/usr/bin:/bin",
        "PYTHONPATH": _SRC_ROOT,
        "PYTHONHASHSEED": "0",
    }
    if delay is not None:
        env[TEST_DELAY_ENV] = str(delay)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--bus-dir",
            str(spool_dir),
            "--store",
            str(store_dir),
            "--poll",
            "0.1",
            "--stale-after",
            str(_STALE),
            "--idle-timeout",
            "120",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def test_sigkilled_worker_lease_is_reaped_and_job_completed(tmp_path):
    cells = fig7_cells(SMOKE_SCALE, seed=0)
    reference = [
        record_fingerprint(r) for r in ExperimentRunner(jobs=0).run(cells)
    ]
    serial_table = format_fig7(
        run_fig7(scale=SMOKE_SCALE, seed=0, runner=ExperimentRunner(jobs=0))
    )

    store = ArtifactStore(tmp_path / "store")
    spool = SpoolDir(tmp_path / "spool", stale_after=_STALE)
    jobs = _pending_jobs(cells)
    for job in jobs:
        from repro.bus import encode_job

        assert spool.enqueue(job.store_key, encode_job(job))

    # The victim leases a job and then sleeps inside the heartbeat scope
    # (the REPRO_BUS_TEST_DELAY hook); SIGKILL stops its heartbeat dead.
    victim = _start_worker(spool.root, store.root, delay=60.0)
    try:
        deadline = time.monotonic() + 60
        while not spool.leased_keys():
            assert time.monotonic() < deadline, "victim never leased a job"
            time.sleep(0.05)
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=30)
    assert spool.leased_keys(), "lease should still be held by the corpse"

    survivor = _start_worker(spool.root, store.root)
    bus = SpoolBus(spool, store, poll=0.1, timeout=90)
    try:
        results = {job.store_key: payload for job, payload, _ in bus.run(jobs)}
    finally:
        survivor.terminate()
        survivor.wait(timeout=30)
    assert set(results) == {job.store_key for job in jobs}
    assert bus.stats.requeues >= 1, "the dead worker's lease was never reaped"
    assert bus.stats.completed == len(jobs)
    assert spool.quarantined() == []

    # The final figure table, materialized from what the surviving
    # worker computed, is bit-identical to serial execution.
    warm = ExperimentRunner(jobs=0, store=store)
    assert [record_fingerprint(r) for r in warm.run(cells)] == reference
    assert warm.stats.attacks_computed == 0  # everything adopted
    warm_table = format_fig7(run_fig7(scale=SMOKE_SCALE, seed=0, runner=warm))
    assert _mask_runtime(warm_table) == _mask_runtime(serial_table)


def test_poisoned_job_quarantines_with_persisted_traceback(tmp_path):
    """A job that deterministically crashes must not ping-pong forever:
    it burns ``max_attempts`` and the coordinator raises the stored
    worker traceback."""
    store = ArtifactStore(tmp_path / "store")
    spool = SpoolDir(tmp_path / "spool", stale_after=30.0, max_attempts=2)
    cell = fig7_cells(SMOKE_SCALE, seed=0)[0]
    poisoned = AttackJob(
        store_key="f" * 16,
        circuit={"not": "a circuit"},  # decode_circuit will raise
        config=cell.config,
    )

    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(
            bus_dir=spool.root,
            store=store,
            poll=0.05,
            stale_after=30.0,
            max_attempts=2,
            idle_timeout=30.0,
            log=lambda *a: None,
        ),
        daemon=True,
    )
    worker.start()
    bus = SpoolBus(spool, store, poll=0.05, timeout=60)
    with pytest.raises(BusError) as excinfo:
        list(bus.run([poisoned]))
    worker.join(timeout=60)
    message = str(excinfo.value)
    assert "quarantined after 2 attempt(s)" in message
    assert "Traceback" in message  # the worker's persisted traceback
    (entry,) = spool.quarantined()
    assert entry.key == poisoned.store_key
    assert entry.attempts == 2
    assert "Traceback" in entry.traceback


def test_socket_poisoned_job_quarantines_with_traceback():
    """Socket-mode twin of the spool poisoned-job test: a job that
    deterministically crashes must burn its attempt budget — the server
    reads the attempt off the connection before clearing it — and raise
    the last shipped worker traceback, not requeue at attempt 0 forever."""
    cell = fig7_cells(SMOKE_SCALE, seed=0)[0]
    poisoned = AttackJob(
        store_key="f" * 16,
        circuit={"not": "a circuit"},  # decode_circuit will raise
        config=cell.config,
    )
    bus = SocketBus(poll=0.05, max_attempts=2, timeout=60)
    worker = threading.Thread(
        target=run_worker,
        kwargs=dict(
            bus_addr=bus.address,
            poll=0.05,
            idle_timeout=5.0,
            log=lambda *a: None,
        ),
        daemon=True,
    )
    worker.start()
    try:
        with pytest.raises(BusError) as excinfo:
            list(bus.run([poisoned]))
    finally:
        bus.close()
        worker.join(timeout=30)
    message = str(excinfo.value)
    assert "failed 2 time(s)" in message
    assert "Traceback" in message  # the worker's shipped traceback
    assert bus.stats.requeues == 1  # attempt 0 → 1, then quarantine
    assert bus.stats.quarantined == 1


def test_socket_connection_drop_requeues_to_healthy_worker(tmp_path):
    """A socket worker that vanishes mid-job (connection EOF) has its job
    requeued; a healthy worker completes it and results match serial."""
    cells = fig7_cells(SMOKE_SCALE, seed=0)[:1]
    reference = [
        record_fingerprint(r) for r in ExperimentRunner(jobs=0).run(cells)
    ]

    bus = SocketBus(poll=0.1, max_attempts=3, timeout=60)
    host, port = bus.address.rsplit(":", 1)

    def flaky_then_healthy():
        # Flaky worker: lease a job, then hang up without finishing it.
        import socket as socketlib

        with socketlib.create_connection((host, int(port))) as conn:
            send_message(conn, {"op": "lease"})
            message = recv_message(conn)
            assert message["op"] == "job"
        # Healthy worker: runs the real loop until the job is done.
        run_worker(
            bus_addr=bus.address,
            poll=0.05,
            idle_timeout=20.0,
            max_jobs=1,
            log=lambda *a: None,
        )

    thread = threading.Thread(target=flaky_then_healthy, daemon=True)
    thread.start()
    runner = ExperimentRunner(jobs=0, store=tmp_path / "store", bus=bus)
    try:
        records = runner.run(cells)
        assert [record_fingerprint(r) for r in records] == reference
        assert bus.stats.requeues >= 1
        assert bus.stats.completed == 1
    finally:
        thread.join(timeout=60)
        runner.close()
