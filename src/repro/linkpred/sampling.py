"""Positive / negative training-link sampling (paper Sec. III-C).

Positives are sampled from the observed wires of the attack graph;
negatives are sampled node pairs that are neither observed wires nor MUX
candidate links.  The dataset is balanced, capped (the paper uses at most
100 000 training links) and split 90/10 into train/validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.linkpred.graph import AttackGraph

__all__ = ["LinkSample", "sample_links"]


@dataclass(frozen=True)
class LinkSample:
    """Sampled training material: ``(u, v, label)`` triples."""

    train: list[tuple[int, int, int]]
    validation: list[tuple[int, int, int]]

    @property
    def n_links(self) -> int:
        return len(self.train) + len(self.validation)


def sample_links(
    graph: AttackGraph,
    max_links: int = 100_000,
    val_fraction: float = 0.1,
    seed: int = 0,
    hard_negative_fraction: float = 0.0,
) -> LinkSample:
    """Sample a balanced, shuffled set of positive and negative links.

    Args:
        graph: attack graph (targets already excluded from observed edges).
        max_links: cap on the total number of sampled links.
        val_fraction: share held out for validation.
        seed: RNG seed.
        hard_negative_fraction: share of negatives drawn from 2-hop node
            pairs (default 0).  Exposed for ablation: on reconvergent
            circuits a removed true wire itself looks like a 2-hop pair, so
            aggressive hard negatives *reduce* key recovery — local
            non-wires and hidden wires become nearly indistinguishable.

    Raises:
        TrainingError: if the graph is too small to sample from.
    """
    if not 0.0 <= val_fraction < 1.0:
        raise TrainingError("val_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    edges = graph.edges()
    if not edges:
        raise TrainingError("attack graph has no observed links to learn from")

    per_class = min(len(edges), max_links // 2)
    chosen = rng.choice(len(edges), size=per_class, replace=False)
    positives = [(edges[i][0], edges[i][1], 1) for i in chosen]

    # Pairs that must never be sampled as negatives: observed wires and the
    # MUX candidate links under attack.
    excluded = {frozenset(e) for e in edges}
    for target in graph.targets:
        excluded.add(frozenset((target.cand_d0, target.load)))
        excluded.add(frozenset((target.cand_d1, target.load)))

    n = graph.n_nodes
    if n < 3:
        raise TrainingError("attack graph too small for negative sampling")
    negatives: list[tuple[int, int, int]] = []
    seen: set[frozenset] = set()
    n_hard = int(per_class * hard_negative_fraction)

    def try_add(u: int, v: int) -> None:
        if u == v:
            return
        pair = frozenset((u, v))
        if pair in excluded or pair in seen:
            return
        seen.add(pair)
        negatives.append((u, v, 0))

    attempts = 0
    max_attempts = n_hard * 50
    while len(negatives) < n_hard and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(n))
        nbrs = graph.neighbor_array(u)
        if not len(nbrs):
            continue
        mid = int(nbrs[int(rng.integers(len(nbrs)))])
        hops2 = graph.neighbor_array(mid)
        if not len(hops2):
            continue
        try_add(u, int(hops2[int(rng.integers(len(hops2)))]))

    attempts = 0
    max_attempts = per_class * 200
    while len(negatives) < per_class and attempts < max_attempts:
        attempts += 1
        try_add(int(rng.integers(n)), int(rng.integers(n)))
    if len(negatives) < per_class:
        # Dense small graphs may not have enough non-edges; shrink to match.
        positives = positives[: len(negatives)]
    if not negatives:
        raise TrainingError("could not sample any negative links")

    links = positives + negatives
    order = rng.permutation(len(links))
    links = [links[i] for i in order]
    n_val = int(len(links) * val_fraction)
    return LinkSample(train=links[n_val:], validation=links[:n_val])
