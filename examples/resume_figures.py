"""Resuming ``repro figures`` across invocations with the artifact store.

Runs the full figure suite **twice, in two separate interpreter
processes**, sharing one content-addressed artifact store directory —
exactly what happens when you ctrl-C a long figure regeneration and
relaunch it, or when the bench suite reuses what the CLI computed:

* invocation 1 locks every netlist and trains every attack, writing each
  artifact through to the store;
* invocation 2 performs **zero lock and zero train jobs** — every
  artifact is rematerialized from disk (``locks=0 (+N store)`` in the
  runner stats) — and prints bit-identical figure tables.

Equivalent shell session::

    export REPRO_STORE=./my-store          # or pass --store ./my-store
    repro figures --figures 7 8 9 10 --scale smoke    # cold: trains
    repro figures --figures 7 8 9 10 --scale smoke    # warm: resumes
    repro cache stats                                  # what is stored
    repro cache gc --keep-days 30                      # prune stale work

The store is content-addressed (netlist digest + attack-config hash +
schema version), so changing a seed, a key size, the epoch budget or the
runtime dtype computes new artifacts instead of poisoning old ones, and
``REPRO_JOBS=N`` pooled runs share the same pool.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import tempfile
import time

SRC_ROOT = pathlib.Path(__file__).resolve().parents[1] / "src"


def invoke(store: pathlib.Path, label: str) -> float:
    """One ``repro figures`` process against *store*; returns wall-clock."""
    print(f"=== {label} ===")
    start = time.perf_counter()
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "figures",
            "--figures", "7", "8", "9", "10",
            "--scale", "smoke",
            "--jobs", "0",
            "--store", str(store),
        ],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"},
        check=True,
    )
    seconds = time.perf_counter() - start
    # Show the bookkeeping lines; the figure tables are identical anyway.
    for line in result.stdout.splitlines():
        if line.startswith(("runner:", "store:")):
            print(f"  {line}")
    print(f"  wall-clock: {seconds:.2f}s\n")
    return seconds


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp:
        store = pathlib.Path(tmp) / "store"
        cold = invoke(store, "invocation 1 (cold store: locks + trains)")
        warm = invoke(store, "invocation 2 (warm store: resumes)")
        print(
            f"resume speedup: {cold / max(warm, 1e-9):.1f}x — the second "
            "process re-locked and re-trained nothing."
        )


if __name__ == "__main__":
    main()
