"""Tests for symmetric (S5), naive MUX, and XOR locking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import random_netlist
from repro.errors import LockingError
from repro.locking import (
    Strategy,
    apply_key,
    lock_naive_mux,
    lock_symmetric,
    lock_xor,
)
from repro.netlist import GateType
from repro.opt import propagate_constants, remove_dead_logic
from repro.sim import hamming_distance


def base_circuit(seed=0):
    return random_netlist("base", 10, 5, 120, seed=seed)


# ---------------------------------------------------------------- symmetric
def test_symmetric_basic_shape():
    locked = lock_symmetric(base_circuit(), key_size=8, seed=2)
    assert locked.key_size == 8
    assert len(locked.localities) == 4  # two key bits per locality
    assert all(loc.strategy is Strategy.S5 for loc in locked.localities)
    assert all(len(loc.muxes) == 2 for loc in locked.localities)


def test_symmetric_pairs_are_complementary():
    locked = lock_symmetric(base_circuit(seed=1), key_size=12, seed=3)
    for loc in locked.localities:
        mi, mj = loc.muxes
        assert mi.key_index != mj.key_index
        assert mi.select_for_true != mj.select_for_true
        gi = locked.circuit.gate(mi.mux_name)
        gj = locked.circuit.gate(mj.mux_name)
        assert gi.inputs[1:] == gj.inputs[1:]  # same data order


def test_symmetric_correct_key_recovers_function():
    base = base_circuit(seed=2)
    locked = lock_symmetric(base, key_size=10, seed=4)
    unlocked = apply_key(locked.circuit, locked.key)
    assert hamming_distance(base, unlocked, n_patterns=2048) == 0.0


def test_symmetric_no_reduction_single_bit():
    base = base_circuit(seed=3)
    locked = lock_symmetric(base, key_size=8, seed=5)
    for bit in range(8):
        for value in (0, 1):
            simplified = propagate_constants(
                locked.circuit, {f"keyinput{bit}": value}
            )
            _, removed = remove_dead_logic(simplified)
            assert removed == 0


def test_symmetric_odd_key_rejected():
    with pytest.raises(LockingError):
        lock_symmetric(base_circuit(), key_size=7)
    with pytest.raises(LockingError):
        lock_symmetric(base_circuit(), key_size=0)


def test_symmetric_fewer_localities_than_dmux():
    """Under the same K, symmetric locking obfuscates fewer localities
    (each locality burns two key bits) — paper Sec. IV."""
    from repro.locking import lock_dmux

    base = base_circuit(seed=4)
    sym = lock_symmetric(base, key_size=16, seed=6)
    dmux = lock_dmux(base, key_size=16, seed=6)
    assert len(sym.localities) <= len(dmux.localities)


# ---------------------------------------------------------------- naive MUX
def test_naive_mux_functional():
    base = base_circuit(seed=5)
    locked = lock_naive_mux(base, key_size=8, seed=7)
    unlocked = apply_key(locked.circuit, locked.key)
    assert hamming_distance(base, unlocked, n_patterns=2048) == 0.0


def test_naive_mux_exhibits_reduction():
    """At least one wrong key bit must produce dangling logic (the SAAM
    vulnerability that D-MUX closes)."""
    base = base_circuit(seed=6)
    locked = lock_naive_mux(base, key_size=12, seed=8)
    reductions = 0
    for mux in locked.mux_instances():
        wrong = 1 - mux.select_for_true
        simplified = propagate_constants(
            locked.circuit, {mux.key_name: wrong}
        )
        _, removed = remove_dead_logic(simplified)
        if removed > 0:
            reductions += 1
    assert reductions > 0


def test_naive_mux_no_loops():
    locked = lock_naive_mux(base_circuit(seed=7), key_size=16, seed=9)
    locked.circuit.validate()


# ---------------------------------------------------------------- XOR
def test_xor_locking_shape_and_function():
    base = base_circuit(seed=8)
    locked = lock_xor(base, key_size=10, seed=10)
    assert locked.key_size == 10
    key_gates = [
        g for g in locked.circuit.gates
        if any(n.startswith("keyinput") for n in g.inputs)
    ]
    assert len(key_gates) == 10
    unlocked = apply_key(locked.circuit, locked.key)
    assert hamming_distance(base, unlocked, n_patterns=2048) == 0.0


def test_xor_gate_type_leaks_key():
    """The classic leakage: XOR <=> key 0, XNOR <=> key 1."""
    locked = lock_xor(base_circuit(seed=9), key_size=12, seed=11)
    for bit in range(12):
        gate = next(
            g for g in locked.circuit.gates if f"keyinput{bit}" in g.inputs
        )
        leaked = "1" if gate.gate_type is GateType.XNOR else "0"
        assert locked.key[bit] == leaked


def test_xor_wrong_bit_flips_function():
    base = base_circuit(seed=10)
    locked = lock_xor(base, key_size=4, seed=12)
    wrong = "".join("1" if c == "0" else "0" for c in locked.key)
    corrupted = apply_key(locked.circuit, wrong)
    assert hamming_distance(base, corrupted, n_patterns=1024) > 0.0


def test_xor_key_size_guard():
    tiny = random_netlist("tiny", 3, 2, 5, seed=0)
    with pytest.raises(LockingError):
        lock_xor(tiny, key_size=50)


# ------------------------------------------------------- cross-scheme props
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 50))
def test_all_mux_schemes_preserve_function(seed):
    base = random_netlist("prop", 8, 4, 90, seed=seed)
    for locker, key_size in (
        (lock_symmetric, 6),
        (lock_naive_mux, 6),
    ):
        locked = locker(base, key_size=key_size, seed=seed)
        unlocked = apply_key(locked.circuit, locked.key)
        assert hamming_distance(base, unlocked, n_patterns=512) == 0.0
