"""Tests for the random netlist generators (incl. property-based checks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import (
    GeneratorConfig,
    and_netlist,
    random_circuit,
    random_netlist,
)
from repro.netlist import GateType


def test_determinism():
    a = random_netlist("x", 8, 4, 60, seed=7)
    b = random_netlist("x", 8, 4, 60, seed=7)
    assert a.gates == b.gates
    assert a.outputs == b.outputs


def test_different_seeds_differ():
    a = random_netlist("x", 8, 4, 60, seed=1)
    b = random_netlist("x", 8, 4, 60, seed=2)
    assert a.gates != b.gates


def test_requested_sizes():
    c = random_netlist("x", 10, 5, 100, seed=3)
    assert len(c.inputs) == 10
    assert len(c) == 100
    assert len(c.outputs) >= 5


def test_no_dangling_nets():
    c = random_netlist("x", 12, 6, 150, seed=11)
    assert c.dangling_nets() == ()


def test_acyclic_and_valid():
    c = random_netlist("x", 6, 3, 80, seed=5)
    c.validate()
    assert not c.has_combinational_loop()


def test_has_multi_output_nodes_for_locking():
    c = random_netlist("x", 16, 8, 200, seed=9)
    multi = [n for n in c.gate_names if c.is_multi_output(n)]
    assert len(multi) >= 10  # locking strategies need these


def test_and_netlist_is_single_type():
    c = and_netlist("ant", 8, 4, 60, seed=1)
    assert {g.gate_type for g in c.gates} == {GateType.AND}


def test_bad_config_rejected():
    with pytest.raises(ValueError):
        GeneratorConfig(n_inputs=0, n_outputs=1, n_gates=1)


@settings(max_examples=25, deadline=None)
@given(
    n_inputs=st.integers(2, 20),
    n_outputs=st.integers(1, 8),
    n_gates=st.integers(5, 120),
    seed=st.integers(0, 2**20),
)
def test_generator_invariants(n_inputs, n_outputs, n_gates, seed):
    """Every generated circuit is valid, acyclic and fully loaded."""
    c = random_circuit(
        "prop",
        GeneratorConfig(n_inputs=n_inputs, n_outputs=n_outputs, n_gates=n_gates),
        seed=seed,
    )
    c.validate()
    # Absorbing rare unused inputs may add at most one gate per input.
    assert n_gates <= len(c) <= n_gates + n_inputs
    assert c.dangling_nets() == ()
    assert all(c.fanout_size(pi) > 0 for pi in c.inputs)
    # Outputs are gate-driven nets, never floating.
    for po in c.outputs:
        assert c.has_net(po)
