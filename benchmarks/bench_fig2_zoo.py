"""Attack-zoo warm-store gate: leaderboard cold vs warm, bit-identical.

Three passes over the leaderboard grid (every attack × scheme × key
size at the active scale):

1. **serial** — in-memory reference, no store.
2. **cold** — fresh content-addressed store; every lock, MuxLink attack
   and baseline report is computed and persisted.
3. **warm** — a *fresh* runner over the same store; the gate asserts it
   performs zero lock jobs, zero MuxLink jobs and zero baseline jobs,
   and that its table is bit-identical to the serial in-memory pass.

Cold/warm wall-clock lands in ``BENCH_training.json`` via
``perf_record.update_record``, so the adoption speedup is tracked
across PRs.
"""

import shutil
import tempfile
import time

from perf_record import update_record
from repro.experiments import (
    ExperimentRunner,
    active_scale,
    format_leaderboard,
    leaderboard_fingerprint,
    run_leaderboard,
)


def test_leaderboard_warm_store_gate():
    scale = active_scale()
    store_dir = tempfile.mkdtemp(prefix="repro-zoo-store-")
    try:
        t0 = time.perf_counter()
        with ExperimentRunner(jobs=0) as serial_runner:
            serial = run_leaderboard(scale=scale, seed=0, runner=serial_runner)
        t_serial = time.perf_counter() - t0
        print()
        print(format_leaderboard(serial))

        t0 = time.perf_counter()
        with ExperimentRunner(jobs=0, store=store_dir) as cold_runner:
            cold = run_leaderboard(scale=scale, seed=0, runner=cold_runner)
            cold_stats = cold_runner.stats
        t_cold = time.perf_counter() - t0
        print(f"  cold pass: {t_cold:7.2f}s  {cold_stats.summary()}")

        t0 = time.perf_counter()
        with ExperimentRunner(jobs=0, store=store_dir) as warm_runner:
            warm = run_leaderboard(scale=scale, seed=0, runner=warm_runner)
            warm_stats = warm_runner.stats
        t_warm = time.perf_counter() - t0
        print(f"  warm pass: {t_warm:7.2f}s  {warm_stats.summary()}")

        assert warm_stats.locks_computed == 0, "warm pass re-locked"
        assert warm_stats.attacks_computed == 0, "warm pass re-trained MuxLink"
        assert warm_stats.baselines_computed == 0, "warm pass re-ran baselines"
        reference = leaderboard_fingerprint(serial)
        assert leaderboard_fingerprint(cold) == reference
        assert leaderboard_fingerprint(warm) == reference
        # Fingerprints cover every computed value (keys, metrics, bit
        # counts), i.e. the table modulo its wall-clock column.

        update_record(
            "bench_fig2_zoo",
            {
                "scale": scale.name,
                "rows": len(serial),
                "serial_seconds": round(t_serial, 4),
                "cold_seconds": round(t_cold, 4),
                "warm_seconds": round(t_warm, 4),
                "cold_baselines_computed": cold_stats.baselines_computed,
                "warm_baselines_computed": warm_stats.baselines_computed,
                "warm_locks_computed": warm_stats.locks_computed,
                "warm_attacks_computed": warm_stats.attacks_computed,
            },
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


if __name__ == "__main__":
    test_leaderboard_warm_store_gate()
    print("bench_fig2_zoo: OK")
