"""Tests for constant propagation (functional equivalence is the invariant)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen import load_c17, random_netlist
from repro.errors import NetlistError
from repro.netlist import Circuit, Gate, GateType, parse_bench
from repro.opt import propagate_constants
from repro.sim import random_patterns, simulate, simulate_outputs


def build(text):
    c, _ = parse_bench(text)
    return c


def outputs_under(circuit, assignments, n_patterns=256, seed=0):
    """Simulate with assigned inputs forced to constants."""
    words, n = random_patterns(len(circuit.inputs), n_patterns, seed=seed)
    stim = {}
    for i, pi in enumerate(circuit.inputs):
        if pi in assignments:
            fill = np.uint64(0) if assignments[pi] == 0 else np.uint64(2**64 - 1)
            stim[pi] = np.full_like(words[i], fill)
        else:
            stim[pi] = words[i]
    return simulate_outputs(circuit, stim)


def assert_equiv_under(original, assignments, seed=0):
    simplified = propagate_constants(original, assignments)
    simplified.validate()
    ref = outputs_under(original, assignments, seed=seed)
    words, _ = random_patterns(len(original.inputs), 256, seed=seed)
    stim = {
        pi: words[i]
        for i, pi in enumerate(original.inputs)
        if pi not in assignments
    }
    for extra in simplified.inputs:  # anchor inputs added for constants
        if extra not in stim:
            stim[extra] = np.zeros(words.shape[1], dtype=np.uint64)
    got = simulate_outputs(simplified, stim)
    assert np.array_equal(ref, got)
    return simplified


def test_and_controlling_zero():
    c = build("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
    s = assert_equiv_under(c, {"a": 0})
    # y collapses to constant 0 (shared const net + interface buffer).
    assert {g.gate_type for g in s.gates} <= {GateType.XOR, GateType.BUF}


def test_and_identity_one():
    c = build("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
    s = assert_equiv_under(c, {"a": 1})
    # y aliases b (via an interface buffer); no AND remains.
    assert not any(g.gate_type is GateType.AND for g in s.gates)
    assert s.outputs == ("y",)
    assert s.gate("y").gate_type is GateType.BUF
    assert s.gate("y").inputs == ("b",)


def test_nand_single_live_input_becomes_not():
    c = build("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)")
    s = assert_equiv_under(c, {"a": 1})
    assert s.gate("y").gate_type is GateType.NOT


def test_or_nor_duals():
    c = build("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\ny = OR(a, b)\nz = NOR(a, b)")
    assert_equiv_under(c, {"a": 1})
    assert_equiv_under(c, {"a": 0})


def test_xor_folds_parity():
    c = build("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XOR(a, b, c)")
    s = assert_equiv_under(c, {"a": 1})
    assert s.gate("y").gate_type is GateType.XNOR
    s2 = assert_equiv_under(c, {"a": 0})
    assert s2.gate("y").gate_type is GateType.XOR
    s3 = assert_equiv_under(c, {"a": 1, "b": 1})
    assert s3.gate("y").gate_type is GateType.BUF
    assert s3.gate("y").inputs == ("c",)


def test_not_buf_chains():
    c = build("INPUT(a)\nOUTPUT(y)\nn = NOT(a)\nb = BUF(n)\ny = NOT(b)")
    s = assert_equiv_under(c, {"a": 1})
    # Everything constant: y = NOT(NOT(1)) = 1.
    assert len(s.outputs) == 1


def test_mux_const_select():
    c = build(
        "INPUT(k)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(k, a, b)"
    )
    s0 = assert_equiv_under(c, {"k": 0})
    assert s0.gate("y").inputs == ("a",)
    s1 = assert_equiv_under(c, {"k": 1})
    assert s1.gate("y").inputs == ("b",)


def test_mux_const_data_variants():
    base = "INPUT(k)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = MUX(k, a, b)"
    c = build(base)
    assert_equiv_under(c, {"a": 0})
    assert_equiv_under(c, {"a": 1})
    assert_equiv_under(c, {"b": 0})
    assert_equiv_under(c, {"b": 1})
    assert_equiv_under(c, {"a": 0, "b": 1})
    assert_equiv_under(c, {"a": 1, "b": 0})
    assert_equiv_under(c, {"a": 1, "b": 1})


def test_mux_identical_branches():
    c = build("INPUT(k)\nINPUT(a)\nOUTPUT(y)\ny = MUX(k, a, a)")
    s = assert_equiv_under(c, {})
    assert not any(g.gate_type is GateType.MUX for g in s.gates)


def test_internal_net_assignment():
    c = build(
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(m, a)"
    )
    s = propagate_constants(c, {"m": 1})
    s.validate()
    # y = OR(1, a) = 1 -> constant output.
    assert len(s.gates) >= 1


def test_invalid_assignments_rejected():
    c = load_c17()
    with pytest.raises(NetlistError):
        propagate_constants(c, {"nope": 0})
    with pytest.raises(NetlistError):
        propagate_constants(c, {"G1": 2})


def test_c17_all_single_assignments_equivalent():
    c = load_c17()
    for pi in c.inputs:
        for v in (0, 1):
            assert_equiv_under(c, {pi: v})


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), data=st.data())
def test_random_circuit_equivalence_property(seed, data):
    """Constant propagation preserves function on random circuits."""
    c = random_netlist("r", 6, 3, 50, seed=seed)
    pi = data.draw(st.sampled_from(list(c.inputs)))
    value = data.draw(st.integers(0, 1))
    assert_equiv_under(c, {pi: value}, seed=seed)
