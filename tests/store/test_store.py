"""ArtifactStore behaviour: layout, stats, corruption, gc, concurrency."""

import os
import threading
import time

import numpy as np
import pytest

from repro.store import SCHEMA_VERSION, ArtifactStore, resolve_store

KEY_A = "ab" * 32
KEY_B = "cd" * 32


def test_put_get_roundtrip_and_stats(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("locks", KEY_A, {"x": 1, "a": np.arange(3)})
    back = store.get("locks", KEY_A)
    assert back["x"] == 1
    np.testing.assert_array_equal(back["a"], np.arange(3))
    assert store.get("locks", KEY_B) is None  # plain miss
    stats = store.stats
    assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
    assert stats.bytes_written > 0 and stats.bytes_read > 0
    assert "1 hits 1 misses" in stats.summary()


def test_layout_is_schema_and_kind_sharded(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put("attacks", KEY_A, {"x": 1})
    assert path == tmp_path / f"v{SCHEMA_VERSION}" / "attacks" / KEY_A[:2] / f"{KEY_A}.npz"
    assert path.exists()


def test_malformed_key_rejected(tmp_path):
    store = ArtifactStore(tmp_path)
    for bad in ("", "../../etc/passwd", "a/b", "x.npz"):
        with pytest.raises(ValueError):
            store.path_for("locks", bad)


def test_corrupt_entry_is_a_warning_and_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put("locks", KEY_A, {"x": 1})
    path.write_bytes(b"garbage")
    with pytest.warns(RuntimeWarning, match="unreadable"):
        assert store.get("locks", KEY_A) is None
    assert store.stats.errors == 1
    # The caller recomputes and rewrites; the entry heals.
    store.put("locks", KEY_A, {"x": 2})
    assert store.get("locks", KEY_A) == {"x": 2}


def test_truncated_entry_is_a_warning_and_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put("locks", KEY_A, {"a": np.arange(10_000)})
    path.write_bytes(path.read_bytes()[:100])
    with pytest.warns(RuntimeWarning):
        assert store.get("locks", KEY_A) is None


def test_schema_bump_ignores_old_entries(tmp_path):
    old = ArtifactStore(tmp_path, schema=SCHEMA_VERSION)
    old.put("locks", KEY_A, {"x": 1})
    new = ArtifactStore(tmp_path, schema=SCHEMA_VERSION + 1)
    assert new.get("locks", KEY_A) is None  # invisible, not fatal
    assert new.stats.errors == 0
    assert [e.schema for e in new.entries()] == []
    assert sorted(e.schema for e in new.entries(all_schemas=True)) == [
        SCHEMA_VERSION
    ]


def test_entries_listing(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put("locks", KEY_A, {"x": 1})
    store.put("attacks", KEY_B, {"y": 2})
    entries = sorted(store.entries(), key=lambda e: e.kind)
    assert [(e.kind, e.key) for e in entries] == [
        ("attacks", KEY_B),
        ("locks", KEY_A),
    ]
    assert all(e.size > 0 for e in entries)


def test_gc_drops_stale_entries_and_tmp_strays(tmp_path):
    store = ArtifactStore(tmp_path)
    old_path = store.put("locks", KEY_A, {"x": 1})
    fresh_path = store.put("locks", KEY_B, {"x": 2})
    stray = tmp_path / f"v{SCHEMA_VERSION}" / "locks" / "zz.tmp"
    stray.write_bytes(b"partial write from a crashed runner")
    live_tmp = tmp_path / f"v{SCHEMA_VERSION}" / "locks" / "live.tmp"
    live_tmp.write_bytes(b"a concurrent writer mid-dump")
    two_days_ago = time.time() - 2 * 86400
    os.utime(old_path, (two_days_ago, two_days_ago))
    os.utime(stray, (two_days_ago, two_days_ago))

    removed, freed = store.gc(keep_days=1)
    assert removed == 2  # the stale entry + the crashed writer's stray
    assert freed > 0
    assert not old_path.exists() and not stray.exists()
    assert live_tmp.exists()  # fresh tmp == possibly in-flight, untouched
    assert fresh_path.exists()
    assert store.get("locks", KEY_B) == {"x": 2}


def test_gc_reclaims_old_schema_dirs_by_age(tmp_path):
    old = ArtifactStore(tmp_path, schema=SCHEMA_VERSION)
    old_path = old.put("locks", KEY_A, {"x": 1})
    stamp = time.time() - 3 * 86400
    os.utime(old_path, (stamp, stamp))
    new = ArtifactStore(tmp_path, schema=SCHEMA_VERSION + 1)
    removed, _ = new.gc(keep_days=1)
    assert removed == 1
    assert not old_path.exists()


def test_read_touches_mtime_for_gc(tmp_path):
    store = ArtifactStore(tmp_path)
    path = store.put("locks", KEY_A, {"x": 1})
    stale = time.time() - 10 * 86400
    os.utime(path, (stale, stale))
    store.get("locks", KEY_A)  # a hit refreshes the age
    removed, _ = store.gc(keep_days=1)
    assert removed == 0 and path.exists()


def test_verify_reports_and_deletes_corrupt_entries(tmp_path):
    store = ArtifactStore(tmp_path)
    good = store.put("locks", KEY_A, {"x": 1})
    bad = store.put("attacks", KEY_B, {"y": 2})
    bad.write_bytes(b"junk")
    corrupt = store.verify()
    assert [e.key for e in corrupt] == [KEY_B]
    assert bad.exists()  # report-only by default
    corrupt = store.verify(delete=True)
    assert [e.key for e in corrupt] == [KEY_B]
    assert not bad.exists() and good.exists()
    assert store.verify() == []


def test_concurrent_writers_never_produce_torn_reads(tmp_path):
    """Two runners sharing one store race on the same content key."""
    store = ArtifactStore(tmp_path)
    payloads = [
        {"tag": "w0", "a": np.full(2000, 0.5)},
        {"tag": "w1", "a": np.full(2000, 1.5)},
    ]
    store.put("attacks", KEY_A, payloads[0])
    stop = threading.Event()
    failures: list[BaseException] = []

    def writer(which: int) -> None:
        local = ArtifactStore(tmp_path)  # own process in real life
        try:
            while not stop.is_set():
                local.put("attacks", KEY_A, payloads[which])
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in (0, 1)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(50):
            back = store.get("attacks", KEY_A)
            assert back is not None, "reader observed a torn file"
            assert back["tag"] in ("w0", "w1")
            expected = 0.5 if back["tag"] == "w0" else 1.5
            assert float(back["a"][0]) == expected
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not failures
    assert store.stats.errors == 0
    # No tmp litter once the writers are done.
    assert not list(tmp_path.rglob("*.tmp"))


def test_resolve_store_argument_env_and_disable(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    assert resolve_store(None) is None
    assert resolve_store("") is None
    explicit = resolve_store(tmp_path / "s")
    assert isinstance(explicit, ArtifactStore)
    assert resolve_store(explicit) is explicit
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env"))
    from_env = resolve_store(None)
    assert isinstance(from_env, ArtifactStore)
    assert from_env.root == tmp_path / "env"
    monkeypatch.setenv("REPRO_STORE", "  ")
    assert resolve_store(None) is None


def test_get_decoder_failure_is_a_warning_and_a_miss(tmp_path):
    """One corruption-tolerance path covers domain decoding too: a valid
    codec archive whose payload does not decode into its domain object
    degrades to a miss, not a crash."""
    store = ArtifactStore(tmp_path)
    store.put("locks", KEY_A, {"not": "a lock payload"})

    def decoder(payload):
        raise KeyError("circuit")

    with pytest.warns(RuntimeWarning, match="undecodable"):
        assert store.get("locks", KEY_A, decoder=decoder) is None
    assert store.stats.errors == 1 and store.stats.hits == 0
    # Without a decoder the raw payload still reads fine.
    assert store.get("locks", KEY_A) == {"not": "a lock payload"}
