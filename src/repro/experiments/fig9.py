"""Fig. 9 — AC/PC/KPA versus the post-processing threshold ``th``.

The GNN is trained once; every threshold value only re-runs Algorithm 1
(exactly the paper's protocol — "the GNN does not require any re-training
as the th value only affects the post-processing").  Reproduced shape:
precision rises monotonically to 100 % at th = 1 while the decided-bit
ratio falls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import rescore_key, score_key
from repro.core.metrics import aggregate_metrics
from repro.experiments.common import ExperimentScale, active_scale
from repro.experiments.runner import Cell, ExperimentRunner, make_cell
from repro.locking import DMUX_SCHEME, SYMMETRIC_SCHEME

__all__ = ["Fig9Row", "fig9_cells", "run_fig9", "format_fig9"]


@dataclass(frozen=True)
class Fig9Row:
    scheme: str
    threshold: float
    accuracy: float
    precision: float
    kpa: float
    decision_rate: float


def fig9_cells(scale: ExperimentScale, seed: int = 0) -> list[Cell]:
    """Both schemes at the largest preset key per ISCAS-85 benchmark."""
    return [
        make_cell(scale, name, circuit_scale, scheme, max(key_sizes), seed)
        for scheme in (DMUX_SCHEME, SYMMETRIC_SCHEME)
        for name, circuit_scale, key_sizes in scale.benchmarks()
        if name in scale.iscas
    ]


def run_fig9(
    scale: ExperimentScale | None = None,
    thresholds: tuple[float, ...] | None = None,
    seed: int = 0,
    runner: ExperimentRunner | None = None,
    jobs: int | None = None,
) -> list[Fig9Row]:
    """Sweep ``th`` over trained attacks for both schemes.

    The GNN is trained once per (scheme, benchmark) cell — pooled when
    *jobs* / ``REPRO_JOBS`` asks for it, and reused outright from a
    shared runner that already ran Fig. 7 — and every threshold value
    only re-runs the Algorithm-1 post-processing.
    """
    scale = scale or active_scale()
    if runner is None:
        with ExperimentRunner(jobs=jobs) as owned:
            return run_fig9(scale, thresholds, seed, runner=owned)
    if thresholds is None:
        thresholds = tuple(np.round(np.arange(0.0, 1.0001, 0.05), 2))
    records = runner.run(fig9_cells(scale, seed))
    rows: list[Fig9Row] = []
    for scheme in (DMUX_SCHEME, SYMMETRIC_SCHEME):
        attacks = [r for r in records if r.scheme == scheme]
        for th in thresholds:
            metrics = aggregate_metrics(
                [
                    score_key(
                        rescore_key(a.extras["result"], th),
                        a.extras["locked"].key,
                    )
                    for a in attacks
                ]
            )
            kpa = metrics.kpa if metrics.kpa == metrics.kpa else 1.0
            rows.append(
                Fig9Row(
                    scheme=scheme,
                    threshold=float(th),
                    accuracy=metrics.accuracy,
                    precision=metrics.precision,
                    kpa=kpa,
                    decision_rate=metrics.decision_rate,
                )
            )
    return rows


def format_fig9(rows: list[Fig9Row]) -> str:
    lines = [
        "Fig. 9 — MuxLink under different post-processing thresholds",
        f"{'scheme':<15}{'th':>6}{'AC':>8}{'PC':>8}{'KPA':>8}{'decided':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.scheme:<15}{r.threshold:>6.2f}{r.accuracy:>8.3f}"
            f"{r.precision:>8.3f}{r.kpa:>8.3f}{r.decision_rate:>9.3f}"
        )
    return "\n".join(lines)
