"""Tests for graph batching, adjacency normalization, and the cached
batch-construction layer (BatchCache / BatchAssembler)."""

import numpy as np
import pytest

from repro.gnn import (
    BatchAssembler,
    BatchCache,
    GraphExample,
    build_batch,
    normalized_adjacency,
)
from repro.nn import default_dtype


def triangle(label=1, width=3):
    edges = np.array([[0, 1], [1, 2], [0, 2]])
    return GraphExample(3, edges, np.ones((3, width)), label=label)


def path(n=4, label=0, width=3):
    edges = np.array([[i, i + 1] for i in range(n - 1)])
    return GraphExample(n, edges, np.ones((n, width)), label=label)


def test_normalized_adjacency_rows_sum_to_one():
    adj = normalized_adjacency(3, np.array([[0, 1], [1, 2]]))
    np.testing.assert_allclose(np.asarray(adj.sum(axis=1)).ravel(), 1.0)


def test_normalized_adjacency_includes_self_loops():
    adj = normalized_adjacency(2, np.array([[0, 1]]))
    dense = adj.toarray()
    assert dense[0, 0] > 0 and dense[1, 1] > 0
    np.testing.assert_allclose(dense, [[0.5, 0.5], [0.5, 0.5]])


def test_normalized_adjacency_handles_isolated_nodes():
    adj = normalized_adjacency(3, np.empty((0, 2)))
    np.testing.assert_allclose(adj.toarray(), np.eye(3))


def test_duplicate_edges_collapse():
    adj = normalized_adjacency(2, np.array([[0, 1], [0, 1], [1, 0]]))
    np.testing.assert_allclose(adj.toarray(), [[0.5, 0.5], [0.5, 0.5]])


def test_build_batch_block_structure():
    batch = build_batch([triangle(), path()])
    assert batch.n_graphs == 2
    assert batch.features.shape == (7, 3)
    assert list(batch.node_offsets) == [0, 3, 7]
    dense = batch.norm_adj.toarray()
    # Off-diagonal blocks are zero.
    assert not dense[:3, 3:].any()
    assert not dense[3:, :3].any()
    np.testing.assert_array_equal(batch.labels, [1, 0])
    assert batch.graph_slice(1) == slice(3, 7)


def test_build_batch_validation():
    with pytest.raises(ValueError):
        build_batch([])
    with pytest.raises(ValueError):
        build_batch([triangle(width=3), triangle(width=4)])


def test_graph_example_validation():
    with pytest.raises(ValueError):
        GraphExample(2, np.array([[0, 5]]), np.ones((2, 3)))
    with pytest.raises(ValueError):
        GraphExample(2, np.empty((0, 2)), np.ones((3, 3)))


def test_batch_respects_runtime_dtype():
    batch = build_batch([triangle(), path()])
    assert batch.features.dtype == default_dtype()
    assert batch.norm_adj.dtype == default_dtype()


def test_sortpool_order_bases():
    batch = build_batch([triangle(), path()])
    np.testing.assert_array_equal(batch.graph_ids, [0, 0, 0, 1, 1, 1, 1])
    np.testing.assert_array_equal(
        batch.segment_positions, [0, 1, 2, 0, 1, 2, 3]
    )
    assert batch.n_nodes == 7


def test_batch_cache_partitions_and_reuses():
    examples = [triangle(), path(), triangle(label=0), path(n=5)]
    cache = BatchCache(examples, batch_size=3)
    assert len(cache) == 2
    assert cache.n_examples == 4
    assert cache[0].n_graphs == 3 and cache[1].n_graphs == 1
    # Iterating returns the same prebuilt objects (no reconstruction).
    assert list(cache)[0] is cache[0]
    reference = build_batch(examples[:3])
    np.testing.assert_array_equal(cache[0].features, reference.features)
    np.testing.assert_array_equal(
        cache[0].norm_adj.toarray(), reference.norm_adj.toarray()
    )
    with pytest.raises(ValueError):
        BatchCache(examples, batch_size=0)


def test_batch_assembler_matches_build_batch():
    examples = [triangle(), path(), triangle(label=0), path(n=6, label=1)]
    assembler = BatchAssembler(examples)
    assert len(assembler) == 4
    for order in ([2, 0, 3], [0, 1, 2, 3], [3], [1, 1, 0]):
        assembled = assembler.assemble(np.array(order))
        reference = build_batch([examples[i] for i in order])
        np.testing.assert_array_equal(
            assembled.node_offsets, reference.node_offsets
        )
        np.testing.assert_array_equal(assembled.labels, reference.labels)
        np.testing.assert_array_equal(assembled.features, reference.features)
        a, b = assembled.norm_adj.tocsr(), reference.norm_adj.tocsr()
        a.sort_indices(), b.sort_indices()
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.data, b.data)


def test_batch_assembler_validation():
    with pytest.raises(ValueError):
        BatchAssembler([triangle(width=3), triangle(width=4)])
    with pytest.raises(ValueError):
        BatchAssembler([triangle()]).assemble(np.array([], dtype=np.int64))
