"""Command-line interface: generate, lock, attack, and evaluate netlists.

Usage examples::

    python -m repro.cli generate c1355 --scale 0.3 -o c1355.bench
    python -m repro.cli lock c1355.bench --scheme dmux --key-size 16 -o locked.bench
    python -m repro.cli attack locked.bench --epochs 20 --h 3
    python -m repro.cli attack locked.bench --workers 4   # parallel extraction
    python -m repro.cli figures --jobs 4                  # pooled fig7-fig10
    python -m repro.cli figures --figures 7 9 --scale smoke
    python -m repro.cli saam locked.bench
    python -m repro.cli sweep locked.bench --train other1.bench --train other2.bench
    python -m repro.cli leaderboard --scale smoke --store /tmp/store
    python -m repro.cli hd original.bench recovered.bench

``attack`` runs subgraph extraction through the batched CSR pipeline
(:mod:`repro.linkpred.subgraph`); ``--workers N`` streams it through N
``multiprocessing`` workers — results are identical for any worker count.
Training runs on the cached-batch float32 engine
(:class:`repro.linkpred.Trainer`); ``--patience`` enables early stopping,
``--checkpoint``/``--resume`` persist and restore the full training state,
and ``--dtype float64`` (or ``REPRO_DTYPE``) restores the float64 runtime.

``figures`` regenerates the paper's Fig. 7-10 through one shared
:class:`~repro.experiments.ExperimentRunner`: ``--jobs N`` (or
``REPRO_JOBS``; ``auto`` = all cores) pools independent attack cells
over N worker processes, and locked netlists / trained attacks are
cached across figures — results are bit-identical for any job count.
With ``--store DIR`` (or ``REPRO_STORE``) those caches write through a
persistent content-addressed artifact store, so a rerun in a fresh
process performs zero lock and zero train jobs; ``attack --store``
keys single attacks into the same pool, and ``cache ls / stats / gc /
verify`` administers it.

``--bus`` swaps the execution backend under ``figures``: ``local``
(default, this host), ``spool`` (a shared spool directory drained by N
``repro worker --bus-dir`` processes) or ``socket`` (a TCP queue served
from the coordinator; workers connect with ``repro worker --bus-addr``).
``repro serve-bus`` bridges a spool directory to socket workers that
cannot mount it.  Results are bit-identical across all backends::

    python -m repro.cli worker --bus-dir /tmp/spool --store /tmp/store &
    python -m repro.cli worker --bus-dir /tmp/spool --store /tmp/store &
    python -m repro.cli figures --scale smoke --bus spool \
        --bus-dir /tmp/spool --store /tmp/store

``repro serve`` is the persistent attack-as-a-service shape: a
long-running server owning the artifact store, a warm result cache and
a fleet of pipelined workers; ``repro attack --serve HOST:PORT`` (or
:mod:`repro.client`) submits content-keyed requests to it, and
``--store remote://HOST:PORT`` points any store consumer at its
artifact pool with no shared filesystem.
"""

from __future__ import annotations

import argparse
import sys

from repro.attacks import saam_attack, scope_attack
from repro.benchgen import benchmark_names, load_benchmark
from repro.core import MuxLinkConfig, run_muxlink, score_key
from repro.linkpred import TrainConfig
from repro.locking import (
    apply_key,
    lock_dmux,
    lock_naive_mux,
    lock_symmetric,
    lock_xor,
)
from repro.netlist import dump_bench, load_bench
from repro.sim import hamming_distance

_SCHEMES = {
    "dmux": lock_dmux,
    "symmetric": lock_symmetric,
    "naive-mux": lock_naive_mux,
    "xor": lock_xor,
}


def _cmd_generate(args: argparse.Namespace) -> int:
    circuit = load_benchmark(args.benchmark, scale=args.scale)
    dump_bench(circuit, args.output)
    print(f"wrote {circuit!r} to {args.output}")
    return 0


def _cmd_lock(args: argparse.Namespace) -> int:
    circuit, _ = load_bench(args.netlist)
    locked = _SCHEMES[args.scheme](circuit, key_size=args.key_size, seed=args.seed)
    dump_bench(locked.circuit, args.output, key=locked.key)
    print(f"locked with {locked.scheme}, key={locked.key}")
    print(f"wrote {args.output}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    if (args.resume or args.checkpoint_every) and not args.checkpoint:
        print(
            "error: --resume/--checkpoint-every require --checkpoint",
            file=sys.stderr,
        )
        return 2
    if (args.lr_decay != 1.0) != (args.lr_decay_every > 0):
        print(
            "error: --lr-decay and --lr-decay-every must be given together",
            file=sys.stderr,
        )
        return 2
    from repro.experiments.common import resolve_worker_count

    if args.dtype:
        import repro.nn as nn

        nn.set_default_dtype(args.dtype)
    if args.spmm:
        import repro.nn as nn

        nn.set_spmm_backend(args.spmm)
    circuit, key = load_bench(args.netlist)
    config = MuxLinkConfig(
        h=args.h,
        threshold=args.threshold,
        train=TrainConfig(
            epochs=args.epochs,
            learning_rate=args.learning_rate,
            seed=args.seed,
            patience=args.patience,
            lr_decay=args.lr_decay,
            lr_decay_every=args.lr_decay_every,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            log_every=args.log_every,
            optimizer=args.optimizer,
            kfac_damping=args.kfac_damping,
            kfac_ema_decay=args.kfac_ema_decay,
            kfac_inv_every=args.kfac_inv_every,
            kfac_cov_every=args.kfac_cov_every,
            kfac_max_dim=args.kfac_max_dim,
            grad_shards=args.grad_shards,
            n_train_workers=resolve_worker_count(
                args.train_workers, "train_workers"
            ),
        ),
        seed=args.seed,
        n_workers=resolve_worker_count(args.workers, "workers"),
        score_prefetch=args.score_prefetch,
    )
    if args.serve:
        # Served mode: ship the request to a `repro serve` process and
        # decode the returned artifact — the output lines below stay
        # byte-identical to a local run for the parity gates.
        from repro.client import ServeClient
        from repro.core.muxlink import rescore_key

        client = ServeClient(args.serve)
        try:
            result = client.attack(circuit, config)
        finally:
            client.close()
        predicted = rescore_key(result, config.threshold)
    else:
        from repro.store import resolve_store

        store = resolve_store(args.store)  # --store wins, else REPRO_STORE
        result = run_muxlink(circuit, config, store=store)
        predicted = result.predicted_key
    print(f"predicted key: {predicted}")
    if key:
        metrics = score_key(predicted, key)
        print(
            f"AC={metrics.accuracy:.3f} PC={metrics.precision:.3f} "
            f"KPA={metrics.kpa:.3f} X={metrics.n_x}"
        )
    print(f"runtime: {result.total_runtime:.1f}s")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ExperimentRunner,
        active_scale,
        format_fig7,
        format_fig8,
        format_fig9,
        format_fig10,
        run_fig7,
        run_fig8,
        run_fig9,
        run_fig10,
        scale_by_name,
    )

    scale = scale_by_name(args.scale) if args.scale else active_scale()
    if args.train_workers is not None:
        # Execution-only knob: sharded-gradient training results are
        # bit-identical for any worker count, so this never invalidates
        # cached artifacts.
        from dataclasses import replace

        scale = replace(scale, n_train_workers=args.train_workers)
    drivers = {
        7: (run_fig7, format_fig7),
        8: (run_fig8, format_fig8),
        9: (run_fig9, format_fig9),
        10: (run_fig10, format_fig10),
    }
    print(f"scale={scale.name} jobs={args.jobs if args.jobs is not None else 'env'}")
    with ExperimentRunner(
        jobs=args.jobs,
        store=args.store,
        bus=args.bus,
        bus_dir=args.bus_dir,
        bus_addr=args.bus_addr,
        liveness=args.liveness,
    ) as runner:
        if runner.store is not None:
            print(f"store={runner.store.root}")
        if runner.bus.name != "local":
            print(f"bus={runner.bus.name}", end="")
            address = getattr(runner.bus, "address", None)
            if address is not None:
                print(f" addr={address}", end="")
            print()
        for figure in args.figures:
            run, fmt = drivers[figure]
            print()
            print(fmt(run(scale=scale, seed=args.seed, runner=runner)))
        print()
        print(f"runner: {runner.stats.summary()}")
        if runner.bus.name != "local":
            print(f"bus[{runner.bus.name}]: {runner.bus.stats.summary()}")
        if runner.store is not None:
            print(f"store: {runner.store.stats.summary()}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import os

    from repro.bus import (
        BUS_ADDR_ENV,
        BUS_DIR_ENV,
        SERVE_ADDR_ENV,
        BusError,
        run_worker,
    )

    bus_dir = args.bus_dir or os.environ.get(BUS_DIR_ENV, "").strip() or None
    bus_addr = args.bus_addr or os.environ.get(BUS_ADDR_ENV, "").strip() or None
    serve_addr = (
        args.serve_addr or os.environ.get(SERVE_ADDR_ENV, "").strip() or None
    )
    try:
        stats = run_worker(
            bus_dir=bus_dir,
            bus_addr=bus_addr,
            serve_addr=serve_addr,
            store=args.store,
            poll=args.poll,
            stale_after=args.stale_after,
            max_attempts=args.max_attempts,
            idle_timeout=args.idle_timeout,
            max_jobs=args.max_jobs,
            blas_threads=args.blas_threads,
            lease_batch=args.lease_batch,
            pipeline=args.pipeline,
        )
    except BusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"worker: {stats.summary()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import subprocess

    from repro.bus.protocol import SERVE_ADDR_ENV
    from repro.serve import AttackServer, ServeError

    try:
        server = AttackServer(
            args.addr,
            args.store,
            max_attempts=args.max_attempts,
            liveness=args.liveness,
            poll=args.poll,
            cache_entries=args.cache_entries,
        )
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Readiness line first (benches and CI parse the bound address from
    # it — the listening socket is already open at this point).
    print(
        f"serve: listening on {server.address} "
        f"(store {server.store.root}, workers {args.workers}, "
        f"pipeline {args.pipeline})",
        flush=True,
    )
    workers: list[subprocess.Popen] = []
    env = dict(os.environ)
    env[SERVE_ADDR_ENV] = server.address
    try:
        for _ in range(args.workers):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-u",
                        "-m",
                        "repro.cli",
                        "worker",
                        "--serve-addr",
                        server.address,
                        "--pipeline",
                        str(args.pipeline),
                        "--poll",
                        str(args.poll),
                    ],
                    env=env,
                )
            )
        stats = server.serve_forever(
            idle_timeout=args.idle_timeout, max_requests=args.max_requests
        )
    finally:
        server.close()
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
    print(f"serve: {stats.summary()}")
    print(f"serve: store {server.store.stats.summary()}")
    return 0


def _cmd_serve_bus(args: argparse.Namespace) -> int:
    from repro.bus import BusError, SpoolDir, serve_spool
    from repro.store import resolve_store

    store = resolve_store(args.store)
    if store is None:
        print(
            "error: serve-bus needs the shared artifact store — pass "
            "--store DIR or set REPRO_STORE",
            file=sys.stderr,
        )
        return 2
    spool = SpoolDir(
        args.bus_dir,
        stale_after=args.stale_after,
        max_attempts=args.max_attempts,
    )
    try:
        stats = serve_spool(
            spool,
            args.bus_addr,
            store,
            poll=args.poll,
            idle_timeout=args.idle_timeout,
            max_jobs=args.max_jobs,
        )
    except BusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"serve-bus: served={stats['served']} completed={stats['completed']} "
        f"failed={stats['failed']} requeued={stats['requeued']}"
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Lazy import: repro.faults.chaos drives repro.experiments, which the
    # faults package itself must never pull in at import time.
    from repro.experiments import active_scale, scale_by_name
    from repro.faults.chaos import run_chaos

    scale = scale_by_name(args.scale) if args.scale else active_scale()
    try:
        outcomes = run_chaos(
            args.plan, scale=scale, seed=args.seed, keep=args.keep
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print()
    failed = [o for o in outcomes if not o.ok]
    injected = sum(o.total_injected for o in outcomes)
    recovered = sum(
        o.requeues + o.failed_over + o.write_retries + o.store_discards
        for o in outcomes
    )
    print(
        f"chaos: {len(outcomes) - len(failed)}/{len(outcomes)} drill(s) "
        f"passed, {injected} fault(s) injected, {recovered} recover(y/ies)"
    )
    return 1 if failed else 0


def _cache_store(args: argparse.Namespace):
    """Resolve the store for ``repro cache`` (--store beats REPRO_STORE)."""
    from repro.store import resolve_store

    store = resolve_store(args.store)
    if store is None:
        print(
            "error: no artifact store — pass --store DIR or set REPRO_STORE",
            file=sys.stderr,
        )
    return store


def _cmd_cache(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    if store is None:
        return 2
    if args.cache_command == "ls":
        entries = list(store.entries())
        for entry in entries:
            print(f"{entry.kind:<12}{entry.size:>12}  {entry.key}")
        print(f"{len(entries)} artifact(s) in {store.schema_dir}")
        return 0
    if args.cache_command == "stats":
        by_kind: dict[str, tuple[int, int]] = {}
        for entry in store.entries():
            count, size = by_kind.get(entry.kind, (0, 0))
            by_kind[entry.kind] = (count + 1, size + entry.size)
        total_count = sum(c for c, _ in by_kind.values())
        total_size = sum(s for _, s in by_kind.values())
        if args.json:
            import json

            print(
                json.dumps(
                    {
                        "root": str(store.root),
                        "schema": store.schema,
                        "kinds": {
                            kind: {"count": count, "bytes": size}
                            for kind, (count, size) in sorted(by_kind.items())
                        },
                        "total": {"count": total_count, "bytes": total_size},
                    },
                    indent=2,
                )
            )
            return 0
        print(f"store {store.root} (schema v{store.schema})")
        for kind in sorted(by_kind):
            count, size = by_kind[kind]
            print(f"  {kind:<12}{count:>8} artifact(s) {size:>14} bytes")
        print(f"  {'total':<12}{total_count:>8} artifact(s) {total_size:>14} bytes")
        return 0
    if args.cache_command == "gc":
        import os

        from repro.bus import BUS_DIR_ENV, SpoolDir

        protect: set[str] = set()
        bus_dir = (
            args.bus_dir or os.environ.get(BUS_DIR_ENV, "").strip() or None
        )
        if bus_dir is not None:
            # Never collect an artifact a spool job is about to produce
            # or a coordinator is about to adopt.
            protect = SpoolDir(bus_dir).referenced_keys()
        removed, freed = store.gc(keep_days=args.keep_days, protect=protect)
        suffix = f", protected {len(protect)} in-flight key(s)" if protect else ""
        print(
            f"removed {removed} file(s), freed {freed} bytes "
            f"(kept entries touched within {args.keep_days} day(s){suffix})"
        )
        return 0
    if args.cache_command == "verify":
        corrupt = store.verify(delete=args.delete)
        checked = len(list(store.entries())) + (len(corrupt) if args.delete else 0)
        for entry in corrupt:
            action = "deleted" if args.delete else "corrupt"
            print(f"{action}: {entry.path}")
        print(f"verified {checked} artifact(s), {len(corrupt)} corrupt")
        return 1 if corrupt else 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _baseline_report(circuit, config, train=(), store=None):
    """Run one baseline attack, adopting/persisting via the shared store.

    With a store (``--store`` or ``REPRO_STORE``) the report is keyed
    exactly as runner/bus jobs key it — a ``repro scope --store D`` run
    warms the same artifact a later ``repro leaderboard --store D``
    adopts, and vice versa.
    """
    from repro.attacks import run_baseline_attack
    from repro.store import (
        baseline_store_key,
        circuit_digest,
        decode_baseline_artifact,
        encode_baseline_artifact,
        resolve_store,
    )

    resolved = resolve_store(store)
    if resolved is None:
        return run_baseline_attack(circuit, config, train=train)
    key = baseline_store_key(
        circuit_digest(circuit),
        config,
        tuple((circuit_digest(t.circuit), t.key) for t in train),
    )
    cached = resolved.get("baselines", key, decoder=decode_baseline_artifact)
    if cached is not None:
        return cached
    report = run_baseline_attack(circuit, config, train=train)
    resolved.put("baselines", key, encode_baseline_artifact(report))
    return report


def _cmd_saam(args: argparse.Namespace) -> int:
    from repro.attacks import BaselineConfig

    circuit, key = load_bench(args.netlist)
    report = _baseline_report(
        circuit, BaselineConfig(attack="saam"), store=args.store
    )
    print(f"SAAM key guess: {report.predicted_key}")
    if key:
        metrics = score_key(report.predicted_key, key)
        print(f"AC={metrics.accuracy:.3f} PC={metrics.precision:.3f}")
    return 0


def _cmd_scope(args: argparse.Namespace) -> int:
    from repro.attacks import BaselineConfig

    circuit, key = load_bench(args.netlist)
    config = BaselineConfig(
        attack="scope", undecided=args.undecided, seed=args.seed
    )
    report = _baseline_report(circuit, config, store=args.store)
    print(f"SCOPE key guess: {report.predicted_key}")
    if key:
        metrics = score_key(report.predicted_key, key)
        kpa = f"{metrics.kpa:.3f}" if metrics.kpa == metrics.kpa else "n/a"
        print(f"AC={metrics.accuracy:.3f} KPA={kpa}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.attacks import BaselineConfig
    from repro.errors import AttackError
    from repro.locking.common import LockedCircuit

    circuit, key = load_bench(args.netlist)
    train = []
    for path in args.train:
        train_circuit, train_key = load_bench(path)
        if not train_key:
            print(
                f"error: training netlist {path} carries no '#key' "
                "comment — SWEEP is supervised and needs the ground "
                "truth of its corpus",
                file=sys.stderr,
            )
            return 2
        train.append(
            LockedCircuit(
                circuit=train_circuit,
                key=train_key,
                localities=[],
                scheme="cli",
                original_name=train_circuit.name,
            )
        )
    config = BaselineConfig(
        attack="sweep",
        undecided=args.undecided,
        seed=args.seed,
        margin=args.margin,
        ridge=args.ridge,
    )
    try:
        report = _baseline_report(
            circuit, config, train=tuple(train), store=args.store
        )
    except AttackError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"SWEEP key guess: {report.predicted_key}")
    if key:
        metrics = score_key(report.predicted_key, key)
        kpa = f"{metrics.kpa:.3f}" if metrics.kpa == metrics.kpa else "n/a"
        print(f"AC={metrics.accuracy:.3f} KPA={kpa}")
    return 0


def _cmd_leaderboard(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ExperimentRunner,
        active_scale,
        format_leaderboard,
        run_leaderboard,
        scale_by_name,
    )

    scale = scale_by_name(args.scale) if args.scale else active_scale()
    if args.train_workers is not None:
        from dataclasses import replace

        scale = replace(scale, n_train_workers=args.train_workers)
    print(f"scale={scale.name} jobs={args.jobs if args.jobs is not None else 'env'}")
    with ExperimentRunner(
        jobs=args.jobs,
        store=args.store,
        bus=args.bus,
        bus_dir=args.bus_dir,
        bus_addr=args.bus_addr,
        liveness=args.liveness,
    ) as runner:
        if runner.store is not None:
            print(f"store={runner.store.root}")
        if runner.bus.name != "local":
            print(f"bus={runner.bus.name}", end="")
            address = getattr(runner.bus, "address", None)
            if address is not None:
                print(f" addr={address}", end="")
            print()
        rows = run_leaderboard(
            scale=scale,
            seed=args.seed,
            runner=runner,
            attacks=tuple(args.attacks) if args.attacks else None,
            ensemble=args.ensemble,
            train_copies=args.train_copies,
        )
        print()
        print(format_leaderboard(rows))
        print()
        print(f"runner: {runner.stats.summary()}")
        if runner.bus.name != "local":
            print(f"bus[{runner.bus.name}]: {runner.bus.stats.summary()}")
        if runner.store is not None:
            print(f"store: {runner.store.stats.summary()}")
    return 0


def _cmd_unlock(args: argparse.Namespace) -> int:
    circuit, stored = load_bench(args.netlist)
    key = args.key or stored
    if not key:
        print("error: no key given and none stored in the file", file=sys.stderr)
        return 2
    unlocked = apply_key(circuit, key)
    dump_bench(unlocked, args.output)
    print(f"wrote unlocked design ({len(unlocked)} gates) to {args.output}")
    return 0


def _cmd_hd(args: argparse.Namespace) -> int:
    a, _ = load_bench(args.reference)
    b, _ = load_bench(args.candidate)
    hd = hamming_distance(a, b, n_patterns=args.patterns, seed=args.seed)
    print(f"HD = {hd:.4%} over {args.patterns} patterns")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MuxLink reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="emit a stand-in benchmark as BENCH")
    p.add_argument("benchmark", choices=benchmark_names() + ("c17",))
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("lock", help="lock a BENCH netlist")
    p.add_argument("netlist")
    p.add_argument("--scheme", choices=sorted(_SCHEMES), default="dmux")
    p.add_argument("--key-size", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_lock)

    p = sub.add_parser("attack", help="run MuxLink on a locked netlist")
    p.add_argument("netlist")
    p.add_argument("--h", type=int, default=3)
    p.add_argument("--threshold", type=float, default=0.01)
    p.add_argument("--epochs", type=int, default=20)
    p.add_argument("--learning-rate", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        default=0,
        help="subgraph-extraction worker processes (0 = in-process; "
        "'auto' = the measured policy, currently in-process)",
    )
    p.add_argument(
        "--patience",
        type=int,
        default=None,
        help="early-stop after N epochs without validation-loss improvement",
    )
    p.add_argument(
        "--lr-decay",
        type=float,
        default=1.0,
        help="multiply the learning rate by this factor on a schedule",
    )
    p.add_argument(
        "--lr-decay-every",
        type=int,
        default=0,
        help="apply --lr-decay every N epochs (0 = never)",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        help="training checkpoint file (weights + optimizer + RNG state)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="save the checkpoint every N epochs (0 = only at the end)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume training from --checkpoint if the file exists",
    )
    p.add_argument(
        "--log-every",
        type=int,
        default=0,
        help="print training progress every N epochs (0 = silent)",
    )
    p.add_argument(
        "--optimizer",
        choices=("adam", "kfac"),
        default="adam",
        help="training optimizer: plain Adam or K-FAC-preconditioned Adam",
    )
    p.add_argument(
        "--kfac-damping",
        type=float,
        default=1e-3,
        help="K-FAC Tikhonov damping added to the Kronecker factors",
    )
    p.add_argument(
        "--kfac-ema-decay",
        type=float,
        default=0.95,
        help="EMA decay of the K-FAC curvature factor running averages",
    )
    p.add_argument(
        "--kfac-inv-every",
        type=int,
        default=10,
        help="recompute the damped factor inverses every N optimizer steps",
    )
    p.add_argument(
        "--kfac-cov-every",
        type=int,
        default=1,
        help="collect curvature statistics every N optimizer steps "
        "(larger values amortize the collection cost)",
    )
    p.add_argument(
        "--kfac-max-dim",
        type=int,
        default=0,
        help="skip preconditioning for factor dimensions beyond this "
        "(0 = no cap; capped layers keep their raw gradient)",
    )
    p.add_argument(
        "--grad-shards",
        type=int,
        default=1,
        help="gradient shards per optimizer step (semantic: fixes the "
        "reduction order of the loss curve)",
    )
    p.add_argument(
        "--train-workers",
        default=1,
        help="processes executing the gradient shards (pure execution "
        "knob; results identical for any worker count; 'auto' = the "
        "measured policy, currently serial)",
    )
    p.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default=None,
        help="numeric runtime (default float32; also via REPRO_DTYPE)",
    )
    p.add_argument(
        "--spmm",
        choices=("scipy", "ell", "numba"),
        default=None,
        help="sparse kernel family (default scipy; also via REPRO_SPMM)",
    )
    p.add_argument(
        "--score-prefetch",
        type=int,
        default=2,
        help="batches in flight in the streamed extract+score pipeline "
        "(0 = serial extract-then-score; results identical)",
    )
    p.add_argument(
        "--store",
        default=None,
        help="artifact store directory: cache this attack by netlist "
        "digest + config hash (default: REPRO_STORE, no store when unset)",
    )
    p.add_argument(
        "--serve",
        default=None,
        metavar="ADDR",
        help="submit to a running `repro serve` endpoint (host:port) "
        "instead of executing locally; output is identical",
    )
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser(
        "figures", help="regenerate paper figures over a pooled runner"
    )
    p.add_argument(
        "--figures",
        type=int,
        nargs="+",
        choices=(7, 8, 9, 10),
        default=(7, 8, 9, 10),
        help="which figures to regenerate (default: all four)",
    )
    p.add_argument(
        "--jobs",
        type=lambda v: v if v.strip().lower() == "auto" else int(v),
        default=None,
        help="attack worker processes; 'auto' = all cores "
        "(default: REPRO_JOBS, serial when unset)",
    )
    p.add_argument(
        "--scale",
        choices=("smoke", "ci", "paper"),
        default=None,
        help="experiment preset (default: REPRO_EXPERIMENT_SCALE or ci)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--train-workers",
        default=None,
        help="processes executing gradient shards during training "
        "(default: REPRO_TRAIN_WORKERS or the preset; 'auto' = the "
        "measured policy; results identical for any worker count)",
    )
    p.add_argument(
        "--store",
        default=None,
        help="persistent artifact store directory; reruns resume with "
        "zero lock/train jobs (default: REPRO_STORE, no store when unset)",
    )
    p.add_argument(
        "--bus",
        choices=("local", "spool", "socket"),
        default=None,
        help="job execution backend (default: REPRO_BUS or local); "
        "results are bit-identical across backends",
    )
    p.add_argument(
        "--bus-dir",
        default=None,
        help="spool directory for --bus spool (default: REPRO_BUS_DIR)",
    )
    p.add_argument(
        "--bus-addr",
        default=None,
        help="bind address for --bus socket, host:port (default: "
        "REPRO_BUS_ADDR or an ephemeral localhost port)",
    )
    p.add_argument(
        "--liveness",
        type=float,
        default=None,
        help="seconds of distributed-bus silence before pending jobs "
        "fail over to in-process execution (default: REPRO_BUS_LIVENESS "
        "or 300; 0 disables fail-over)",
    )
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser(
        "worker",
        help="execute attack jobs from a spool directory or socket bus",
    )
    p.add_argument(
        "--bus-dir",
        default=None,
        help="spool directory to lease jobs from (default: REPRO_BUS_DIR); "
        "requires --store",
    )
    p.add_argument(
        "--bus-addr",
        default=None,
        help="coordinator/broker address host:port (default: REPRO_BUS_ADDR)",
    )
    p.add_argument(
        "--store",
        default=None,
        help="shared artifact store for spool mode (default: REPRO_STORE)",
    )
    p.add_argument(
        "--poll",
        type=float,
        default=0.25,
        help="idle poll interval in seconds",
    )
    p.add_argument(
        "--stale-after",
        type=float,
        default=30.0,
        help="spool leases with no heartbeat for this long are reaped",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="requeue budget before a failing job is quarantined",
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: run forever)",
    )
    p.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after handling this many jobs",
    )
    p.add_argument(
        "--blas-threads",
        type=int,
        default=None,
        help="cap this worker's OpenBLAS pool (default: 1 — jobs are "
        "single-core and concurrent workers oversubscribe otherwise; "
        "REPRO_BLAS_THREADS overrides; 0 leaves BLAS alone)",
    )
    p.add_argument(
        "--serve-addr",
        default=None,
        help="`repro serve` endpoint to hold a persistent pipelined "
        "connection to (default: REPRO_SERVE_ADDR)",
    )
    p.add_argument(
        "--pipeline",
        type=int,
        default=2,
        help="serve mode: jobs to keep in flight on the connection "
        "(the next job is pre-shipped while the current one executes)",
    )
    p.add_argument(
        "--lease-batch",
        type=int,
        default=None,
        help="spool mode: claim up to N pending jobs per directory scan "
        "(default: REPRO_BUS_LEASE_BATCH or 1; amortizes scan overhead "
        "on small jobs)",
    )
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "chaos",
        help="fault-injection drills: run the smoke grid under a named "
        "fault plan and assert bit-parity with a clean serial run",
    )
    p.add_argument(
        "--plan",
        action="append",
        required=True,
        metavar="NAME",
        help="named fault plan to drill (repeatable): worker-crash, "
        "socket-flaky, torn-store, enospc, heartbeat-stall, lease-race, "
        "all-workers-die, serve-flaky",
    )
    p.add_argument(
        "--scale",
        choices=("smoke", "ci", "paper"),
        default=None,
        help="experiment preset (default: REPRO_EXPERIMENT_SCALE or ci)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--keep",
        action="store_true",
        help="keep each drill's spool/store work directory for autopsy",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve-bus",
        help="serve a spool directory to socket workers over TCP",
    )
    p.add_argument(
        "--bus-dir",
        required=True,
        help="spool directory to serve jobs from",
    )
    p.add_argument(
        "--bus-addr",
        default="127.0.0.1:0",
        help="bind address host:port (default: ephemeral localhost port)",
    )
    p.add_argument(
        "--store",
        default=None,
        help="shared artifact store results are written to "
        "(default: REPRO_STORE)",
    )
    p.add_argument("--poll", type=float, default=0.25)
    p.add_argument(
        "--stale-after",
        type=float,
        default=30.0,
        help="spool leases with no heartbeat for this long are reaped",
    )
    p.add_argument("--max-attempts", type=int, default=3)
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many fully idle seconds (default: run forever)",
    )
    p.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after this many completed jobs",
    )
    p.set_defaults(func=_cmd_serve_bus)

    p = sub.add_parser(
        "serve",
        help="attack-as-a-service: a persistent server with warm "
        "caches, a remote artifact store and pipelined workers",
    )
    p.add_argument(
        "--addr",
        default="127.0.0.1:0",
        help="bind address host:port (default: ephemeral localhost port)",
    )
    p.add_argument(
        "--store",
        default=None,
        help="artifact store directory the server owns — also the "
        "backing of remote:// stores (default: REPRO_STORE)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="persistent pre-warmed worker processes to spawn "
        "(0 = external workers connect with `repro worker --serve-addr`)",
    )
    p.add_argument(
        "--pipeline",
        type=int,
        default=2,
        help="jobs kept in flight per worker connection",
    )
    p.add_argument("--poll", type=float, default=0.25)
    p.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="requeue budget before a failing request is reported failed",
    )
    p.add_argument(
        "--liveness",
        type=float,
        default=300.0,
        help="seconds of worker silence before queued requests fail "
        "over to in-process execution (0 disables)",
    )
    p.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="in-memory result-cache entries (the warmest tier)",
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many fully idle seconds (default: forever)",
    )
    p.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="exit once this many submits have been taken and settled",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "cache", help="administer a persistent artifact store"
    )
    p.add_argument(
        "--store",
        default=None,
        help="store directory (default: REPRO_STORE)",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("ls", help="list artifacts (kind, bytes, key)")
    stats_p = cache_sub.add_parser(
        "stats", help="per-kind artifact counts and bytes"
    )
    stats_p.add_argument(
        "--json",
        action="store_true",
        help="emit the stats as machine-readable JSON",
    )
    gc_p = cache_sub.add_parser(
        "gc", help="drop artifacts not touched recently (plus stray tmp files)"
    )
    gc_p.add_argument(
        "--keep-days",
        type=float,
        required=True,
        help="keep artifacts read or written within this many days",
    )
    gc_p.add_argument(
        "--bus-dir",
        default=None,
        help="spool directory whose pending/leased jobs' artifacts are "
        "never collected (default: REPRO_BUS_DIR; unset = no protection)",
    )
    verify_p = cache_sub.add_parser(
        "verify", help="decode every artifact; report (and drop) corrupt ones"
    )
    verify_p.add_argument(
        "--delete",
        action="store_true",
        help="delete the corrupt artifacts instead of only reporting them",
    )
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("saam", help="run the SAAM structural attack")
    p.add_argument("netlist")
    p.add_argument(
        "--store",
        default=None,
        help="shared artifact store; the report is keyed like runner "
        "jobs (default: REPRO_STORE, no store when unset)",
    )
    p.set_defaults(func=_cmd_saam)

    p = sub.add_parser("scope", help="run the SCOPE constant-propagation attack")
    p.add_argument("netlist")
    p.add_argument("--undecided", choices=("coin", "x"), default="x")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--store",
        default=None,
        help="shared artifact store; the report is keyed like runner "
        "jobs (default: REPRO_STORE, no store when unset)",
    )
    p.set_defaults(func=_cmd_scope)

    p = sub.add_parser(
        "sweep", help="run the SWEEP constant-propagation attack"
    )
    p.add_argument("netlist")
    p.add_argument(
        "--train",
        action="append",
        required=True,
        metavar="BENCH",
        help="locked netlist with a stored '#key' to train on "
        "(repeatable; order matters for the artifact identity)",
    )
    p.add_argument("--margin", type=float, default=1e-6)
    p.add_argument("--undecided", choices=("coin", "x"), default="x")
    p.add_argument("--ridge", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--store",
        default=None,
        help="shared artifact store; the report is keyed like runner "
        "jobs (default: REPRO_STORE, no store when unset)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "leaderboard",
        help="resilience leaderboard: every attack × scheme × key size",
    )
    p.add_argument(
        "--attacks",
        nargs="+",
        choices=(
            "muxlink",
            "saam",
            "scope",
            "sweep",
            "random",
            "muxlink+scope",
            "muxlink+sweep",
        ),
        default=None,
        help="roster to run (default: all primitives; add --ensemble "
        "for the combined rows)",
    )
    p.add_argument(
        "--ensemble",
        action="store_true",
        help="also run MuxLink+SCOPE / MuxLink+SWEEP combined rows",
    )
    p.add_argument(
        "--train-copies",
        type=int,
        default=2,
        help="extra locked copies SWEEP trains on (attacked copy is "
        "always copy 0, shared with the MuxLink grid)",
    )
    p.add_argument(
        "--jobs",
        type=lambda v: v if v.strip().lower() == "auto" else int(v),
        default=None,
        help="attack worker processes; 'auto' = all cores "
        "(default: REPRO_JOBS, serial when unset)",
    )
    p.add_argument(
        "--scale",
        choices=("smoke", "ci", "paper"),
        default=None,
        help="experiment preset (default: REPRO_EXPERIMENT_SCALE or ci)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--train-workers",
        default=None,
        help="processes executing gradient shards during training "
        "(default: REPRO_TRAIN_WORKERS or the preset)",
    )
    p.add_argument(
        "--store",
        default=None,
        help="persistent artifact store directory; shared with "
        "'figures' — a leaderboard over a fig7-warmed store re-locks "
        "and re-attacks nothing (default: REPRO_STORE)",
    )
    p.add_argument(
        "--bus",
        choices=("local", "spool", "socket"),
        default=None,
        help="job execution backend (default: REPRO_BUS or local); "
        "results are bit-identical across backends",
    )
    p.add_argument(
        "--bus-dir",
        default=None,
        help="spool directory for --bus spool (default: REPRO_BUS_DIR)",
    )
    p.add_argument(
        "--bus-addr",
        default=None,
        help="bind address for --bus socket, host:port (default: "
        "REPRO_BUS_ADDR or an ephemeral localhost port)",
    )
    p.add_argument(
        "--liveness",
        type=float,
        default=None,
        help="seconds of distributed-bus silence before pending jobs "
        "fail over to in-process execution (default: REPRO_BUS_LIVENESS "
        "or 300; 0 disables fail-over)",
    )
    p.set_defaults(func=_cmd_leaderboard)

    p = sub.add_parser("unlock", help="apply a key to a locked netlist")
    p.add_argument("netlist")
    p.add_argument("--key", default=None, help="defaults to the stored #key")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_unlock)

    p = sub.add_parser("hd", help="Hamming distance between two netlists")
    p.add_argument("reference")
    p.add_argument("candidate")
    p.add_argument("--patterns", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_hd)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
