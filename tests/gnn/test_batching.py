"""Tests for graph batching and adjacency normalization."""

import numpy as np
import pytest

from repro.gnn import GraphExample, build_batch, normalized_adjacency


def triangle(label=1, width=3):
    edges = np.array([[0, 1], [1, 2], [0, 2]])
    return GraphExample(3, edges, np.ones((3, width)), label=label)


def path(n=4, label=0, width=3):
    edges = np.array([[i, i + 1] for i in range(n - 1)])
    return GraphExample(n, edges, np.ones((n, width)), label=label)


def test_normalized_adjacency_rows_sum_to_one():
    adj = normalized_adjacency(3, np.array([[0, 1], [1, 2]]))
    np.testing.assert_allclose(np.asarray(adj.sum(axis=1)).ravel(), 1.0)


def test_normalized_adjacency_includes_self_loops():
    adj = normalized_adjacency(2, np.array([[0, 1]]))
    dense = adj.toarray()
    assert dense[0, 0] > 0 and dense[1, 1] > 0
    np.testing.assert_allclose(dense, [[0.5, 0.5], [0.5, 0.5]])


def test_normalized_adjacency_handles_isolated_nodes():
    adj = normalized_adjacency(3, np.empty((0, 2)))
    np.testing.assert_allclose(adj.toarray(), np.eye(3))


def test_duplicate_edges_collapse():
    adj = normalized_adjacency(2, np.array([[0, 1], [0, 1], [1, 0]]))
    np.testing.assert_allclose(adj.toarray(), [[0.5, 0.5], [0.5, 0.5]])


def test_build_batch_block_structure():
    batch = build_batch([triangle(), path()])
    assert batch.n_graphs == 2
    assert batch.features.shape == (7, 3)
    assert list(batch.node_offsets) == [0, 3, 7]
    dense = batch.norm_adj.toarray()
    # Off-diagonal blocks are zero.
    assert not dense[:3, 3:].any()
    assert not dense[3:, :3].any()
    np.testing.assert_array_equal(batch.labels, [1, 0])
    assert batch.graph_slice(1) == slice(3, 7)


def test_build_batch_validation():
    with pytest.raises(ValueError):
        build_batch([])
    with pytest.raises(ValueError):
        build_batch([triangle(width=3), triangle(width=4)])


def test_graph_example_validation():
    with pytest.raises(ValueError):
        GraphExample(2, np.array([[0, 5]]), np.ones((2, 3)))
    with pytest.raises(ValueError):
        GraphExample(2, np.empty((0, 2)), np.ones((3, 3)))
