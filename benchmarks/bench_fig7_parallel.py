"""Fig. 7 runner benchmark: pooled grid execution vs serial, plus caching.

Runs the Fig. 7 (benchmark x scheme x key size) grid through
:class:`~repro.experiments.ExperimentRunner` three ways at a fixed seed:

1. **serial** — ``jobs=0``, the reproducible single-core default;
2. **pooled** — ``jobs=REPRO_BENCH_FIG7_JOBS`` (default 4) worker
   processes over the *same* cells;
3. **cache-warm** — the pooled runner again, which must re-lock and
   re-train nothing.

It doubles as the equivalence guard for the engine:

* the pooled records must be **bit-identical** to the serial records
  (per-cell ``SeedSequence`` streams are keyed on cell identity, not
  grid order or pool size);
* the warm rerun must hit the artifact cache (zero new locks/attacks on
  the instrumented counters) and return the same records;
* with at least ``JOBS`` cores available, the pooled run must be at
  least ``MIN_SPEEDUP``x faster wall-clock than the serial run (the
  speedup check is skipped on smaller machines, where a pool cannot
  help; ``REPRO_BENCH_FIG7_MIN_SPEEDUP`` relaxes the floor on noisy
  shared runners).

Run standalone::

    python benchmarks/bench_fig7_parallel.py

or under pytest::

    pytest benchmarks/bench_fig7_parallel.py -s

``REPRO_BENCH_FIG7_SCALE`` selects the grid (default ``ci``: 16 cells;
``smoke`` shrinks it for quick checks).  When ``GITHUB_STEP_SUMMARY`` is
set (GitHub Actions), the timings land in the job summary.
"""

from __future__ import annotations

import os
import time

from repro.experiments import (
    ExperimentRunner,
    fig7_cells,
    record_fingerprint,
    scale_by_name,
)

SCALE_NAME = os.environ.get("REPRO_BENCH_FIG7_SCALE", "ci")
JOBS = int(os.environ.get("REPRO_BENCH_FIG7_JOBS", "4"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_FIG7_MIN_SPEEDUP", "2.0"))
SEED = 0


def _cores() -> int:
    return os.cpu_count() or 1


def _summarize(rows: list[tuple[str, float]], speedup: float, asserted: bool) -> None:
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(
            f"### bench_fig7_parallel ({SCALE_NAME} grid, {JOBS} workers, "
            f"{_cores()} cores)\n\n"
        )
        handle.write("| run | wall-clock |\n|---|---|\n")
        for name, seconds in rows:
            handle.write(f"| {name} | {seconds:.2f}s |\n")
        gate = "asserted" if asserted else "informational (too few cores)"
        handle.write(f"\npooled speedup: **{speedup:.2f}x** ({gate})\n")


def test_pooled_grid_parity_cache_and_speedup():
    scale = scale_by_name(SCALE_NAME)
    cells = fig7_cells(scale, seed=SEED)
    print(
        f"\n[bench_fig7_parallel] scale={scale.name} cells={len(cells)} "
        f"jobs={JOBS} cores={_cores()}"
    )

    t0 = time.perf_counter()
    serial = ExperimentRunner(jobs=0).run(cells)
    t_serial = time.perf_counter() - t0

    with ExperimentRunner(jobs=JOBS) as pooled_runner:
        t0 = time.perf_counter()
        pooled = pooled_runner.run(cells)
        t_pooled = time.perf_counter() - t0

        locks = pooled_runner.stats.locks_computed
        attacks = pooled_runner.stats.attacks_computed
        t0 = time.perf_counter()
        warm = pooled_runner.run(cells)
        t_warm = time.perf_counter() - t0
        # Cache-warm rerun: zero re-locks, zero re-trains.
        assert pooled_runner.stats.locks_computed == locks
        assert pooled_runner.stats.attacks_computed == attacks
        assert pooled_runner.stats.locks_reused >= len(cells)

    # Bit-identical records for any pool size (and from the cache).
    serial_fp = [record_fingerprint(r) for r in serial]
    assert [record_fingerprint(r) for r in pooled] == serial_fp
    assert [record_fingerprint(r) for r in warm] == serial_fp

    speedup = t_serial / t_pooled if t_pooled > 0 else float("inf")
    print(f"  serial ({len(cells)} cells): {t_serial:7.2f}s")
    print(f"  pooled ({JOBS} workers):   {t_pooled:7.2f}s  ({speedup:.2f}x)")
    print(f"  cache-warm rerun:      {t_warm * 1000:7.1f}ms")
    assert_speedup = _cores() >= JOBS
    _summarize(
        [
            (f"serial ({len(cells)} cells)", t_serial),
            (f"pooled ({JOBS} workers)", t_pooled),
            ("cache-warm rerun", t_warm),
        ],
        speedup,
        assert_speedup,
    )
    if assert_speedup:
        assert speedup >= MIN_SPEEDUP, (
            f"pooled fig7 grid is only {speedup:.2f}x faster than serial "
            f"with {JOBS} workers on {_cores()} cores (need >= {MIN_SPEEDUP}x)"
        )
    else:
        print(
            f"  speedup assertion skipped: {_cores()} cores < {JOBS} workers"
        )


if __name__ == "__main__":
    test_pooled_grid_parity_cache_and_speedup()
    print("bench_fig7_parallel: OK")
