"""SCOPE/SWEEP behaviour: signal on naive schemes, ~50% KPA on resilient ones."""

import pytest

from repro.attacks import SweepAttack, random_guess_attack, scope_attack
from repro.benchgen import random_netlist
from repro.core.metrics import aggregate_metrics, score_key
from repro.errors import AttackError
from repro.locking import lock_dmux, lock_naive_mux, lock_symmetric, lock_xor


def base(seed=0):
    return random_netlist("base", 10, 5, 110, seed=seed)


# ------------------------------------------------------------------- SCOPE
def test_scope_uninformative_on_dmux():
    """D-MUX branch swaps leave gate counts identical; residual depth /
    switching deltas exist (like synthesis noise) but carry no key signal,
    so pooled KPA stays near 50%."""
    results = []
    for seed in range(8):
        locked = lock_dmux(base(seed=seed), key_size=12, seed=seed + 1)
        report = scope_attack(locked.circuit, undecided="x")
        results.append(score_key(report.predicted_key, locked.key))
    pooled = aggregate_metrics(results)
    assert pooled.n_total - pooled.n_x == 0 or 0.25 <= pooled.kpa <= 0.75


def test_scope_uninformative_on_symmetric():
    results = []
    for seed in range(8):
        locked = lock_symmetric(base(seed=seed), key_size=12, seed=seed + 1)
        report = scope_attack(locked.circuit, undecided="x")
        results.append(score_key(report.predicted_key, locked.key))
    pooled = aggregate_metrics(results)
    assert pooled.n_total - pooled.n_x == 0 or 0.25 <= pooled.kpa <= 0.75


def test_scope_coinflip_kpa_near_half_on_dmux():
    """Fig. 2 shape: with coin-flip tie-breaking, KPA ~= 50% on D-MUX."""
    results = []
    for seed in range(8):
        locked = lock_dmux(base(seed=seed), key_size=16, seed=seed)
        report = scope_attack(locked.circuit, undecided="coin", seed=seed)
        results.append(score_key(report.predicted_key, locked.key))
    pooled = aggregate_metrics(results)
    assert 0.3 < pooled.kpa < 0.7


def test_scope_finds_signal_on_naive_mux():
    """Naive MUX with single-output true wires shows feature asymmetry."""
    locked = lock_naive_mux(base(seed=4), key_size=12, seed=5)
    report = scope_attack(locked.circuit, undecided="x")
    decided = [c for c in report.predicted_key if c != "x"]
    assert decided, "expected at least some structural signal"
    metrics = score_key(report.predicted_key, locked.key)
    assert metrics.kpa > 0.7


def test_scope_input_validation():
    with pytest.raises(AttackError):
        scope_attack(base())
    locked = lock_dmux(base(), key_size=4, seed=0)
    with pytest.raises(AttackError):
        scope_attack(locked.circuit, undecided="maybe")


# ------------------------------------------------------------------- SWEEP
def make_corpus(locker, n, key_size, base_seed=0):
    out = []
    for i in range(n):
        circuit = random_netlist(f"t{i}", 10, 5, 110, seed=base_seed + i)
        out.append(locker(circuit, key_size=key_size, seed=base_seed + i))
    return out


def test_sweep_learns_xor_leakage():
    """XOR locking leaks the key through re-synthesis deltas; SWEEP must
    recover it almost perfectly."""
    train = make_corpus(lock_xor, 6, key_size=8, base_seed=10)
    test_set = make_corpus(lock_xor, 3, key_size=8, base_seed=50)
    attack = SweepAttack(margin=1e-3).fit(train)
    results = [
        score_key(attack.attack(t.circuit).predicted_key, t.key)
        for t in test_set
    ]
    pooled = aggregate_metrics(results)
    assert pooled.kpa > 0.9
    assert pooled.accuracy > 0.8


def test_sweep_no_signal_on_dmux():
    """Fig. 2 shape: SWEEP trained on D-MUX corpus cannot beat coin flips."""
    train = make_corpus(lock_dmux, 6, key_size=10, base_seed=20)
    test_set = make_corpus(lock_dmux, 4, key_size=10, base_seed=60)
    attack = SweepAttack(margin=1e-3, undecided="coin").fit(train)
    results = [
        score_key(attack.attack(t.circuit).predicted_key, t.key)
        for t in test_set
    ]
    pooled = aggregate_metrics(results)
    assert 0.25 <= pooled.kpa <= 0.75


def test_sweep_requires_fit():
    locked = lock_xor(base(), key_size=4, seed=1)
    with pytest.raises(AttackError):
        SweepAttack().attack(locked.circuit)
    with pytest.raises(AttackError):
        SweepAttack().fit([])


# ------------------------------------------------------------ random guess
def test_random_guess_is_50_50():
    results = []
    for seed in range(10):
        locked = lock_dmux(base(seed=seed), key_size=16, seed=seed)
        guess = random_guess_attack(locked.circuit, seed=seed)
        results.append(score_key(guess, locked.key))
    pooled = aggregate_metrics(results)
    assert 0.35 < pooled.kpa < 0.65
    assert pooled.n_x == 0
