"""Fault injection and chaos drills: break the machinery, not the science.

Walks the robustness layer bottom-up:

1. a :class:`~repro.faults.RetryPolicy` absorbing a transient fault with
   deterministic exponential backoff;
2. a :class:`~repro.faults.FaultPlan` arming the artifact store's
   ``write_enospc`` site — the injected "disk full" is retried away and
   the store publishes nothing partial;
3. a full ``repro chaos`` drill: the smoke grid under the ``enospc``
   plan, gated on the figure table being bit-identical to a clean run.

The same drills run distributed topologies from the CLI::

    python -m repro.cli chaos --plan worker-crash --plan socket-flaky

::

    python examples/chaos_drill.py
"""

import errno
import tempfile

import numpy as np

from repro import faults
from repro.faults import FaultPlan, FaultSite, RetryPolicy
from repro.faults.chaos import run_chaos
from repro.store import ArtifactStore


def main() -> None:
    print("=== 1. RetryPolicy: deterministic backoff ===")
    policy = RetryPolicy(max_attempts=4, base_delay=0.05, jitter=0.25, seed=0)
    for attempt in range(1, 4):
        print(f"  attempt {attempt} failed -> sleep {policy.delay(attempt):.3f}s"
              " (same seed, same schedule, every run)")

    attempts = []

    def flaky() -> str:
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError(errno.ENOSPC, "disk full (transient)")
        return "ok"

    fast = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0)
    print(f"  policy.call(flaky) -> {fast.call(flaky)!r} "
          f"after {len(attempts)} attempts")

    print("\n=== 2. FaultPlan: injected ENOSPC on the store write path ===")
    plan = FaultPlan(
        "demo", sites=(FaultSite("store.write_enospc", times=2),), seed=0
    )
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root, retry=fast)
        faults.activate(plan)
        try:
            store.put("locks", "ab" * 32, {"x": np.arange(8)})
        finally:
            faults.deactivate()
        print(f"  store survived: {store.stats.summary()}")
        print(f"  verify after injected faults: "
              f"{store.verify() or 'clean'}")

    print("\n=== 3. Full drill: smoke grid under the enospc plan ===")
    (outcome,) = run_chaos(["enospc"], seed=0, log=lambda line: None)
    print(outcome.summary())
    print("  (records and rendered table bit-identical to a clean run — "
        "recovery is invisible in the science)")


if __name__ == "__main__":
    main()
